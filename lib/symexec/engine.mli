(** Path exploration by re-execution (generational search).

    A program under test is an OCaml function over an ['ev env]; it reads
    symbolic inputs (bitvector expressions from {!Smt.Expr}), branches with
    {!branch}, and records observable events with {!emit}.  When a branch
    condition is symbolic and both arms are feasible under the current path
    condition, the engine pushes a replay script for the unexplored arm
    onto the frontier and continues down the chosen arm.  Frontier items
    re-execute the program from the start; scripted decisions replay
    without solver calls, so the solver runs only at genuinely new forks.

    A cached satisfying model of the current path condition decides most
    branch feasibilities without any solver query at all.

    This engine plays the role Cloud9 plays for SOFT: it produces, per
    explored path, the path condition, the emitted events, and the covered
    program points. *)

open Smt

type decision = Dir of bool | Val of int64

type 'ev env
(** Per-path execution context, parameterized by the event type. *)

exception Path_crash of string
(** The program under test crashed; the path is recorded with the crash. *)

exception Path_abort
(** Internal: the path became infeasible; no result is recorded. *)

exception Path_stop
(** Internal: the path stopped early (see {!stop}); events so far are
    recorded as a normal result. *)

type 'ev path_result = {
  pc : Expr.boolean list;  (** path condition conjuncts, in execution order *)
  path_cond : Expr.boolean;  (** balanced conjunction of [pc] *)
  events : 'ev list;
  crashed : string option;
  covered : Coverage.snapshot;
  decisions : int;  (** symbolic decisions taken along the path *)
}

type run_stats = {
  path_count : int;
  aborted : int;  (** paths killed as infeasible *)
  truncated : int;  (** paths exceeding the decision bound *)
  forks : int;
  exceptions : int;  (** paths ended by an uncaught agent exception *)
  solver_unknowns : int;  (** arm queries lost to the solver budget *)
  deadline_hit : bool;  (** exploration stopped by the wall-clock budget *)
  cpu_time : float;
  wall_time : float;
  avg_constraint_size : float;  (** Table-2 metric, averaged over paths *)
  max_constraint_size : int;
  solver_sat_calls : int;
  solver_cache_hits : int;
  solver_interval_hits : int;
}

type 'ev run_result = {
  results : 'ev path_result list;
  stats : run_stats;
  coverage : Coverage.set;  (** union over all explored paths *)
}

(** {1 Primitives for programs under test} *)

val emit : 'ev env -> 'ev -> unit
(** Record an observable event on the current path. *)

val events_so_far : 'ev env -> 'ev list
val event_count : 'ev env -> int

val crash : 'ev env -> string -> 'a
(** Terminate the path as a crash (recorded as part of the result). *)

val stop : 'ev env -> 'a
(** End the path normally, keeping the events emitted so far (e.g. the
    program blocks waiting for input that will never come). *)

val branch : ?loc:Coverage.branch_point -> 'ev env -> Expr.boolean -> bool
(** Branch on a condition.  Concrete conditions do not fork; symbolic ones
    fork when both arms are feasible.  [loc] marks branch coverage. *)

val branch_eq : ?loc:Coverage.branch_point -> 'ev env -> Expr.bv -> int64 -> bool
(** [branch_eq env e v] is [branch env (e = v)]. *)

val assume : 'ev env -> Expr.boolean -> unit
(** Add a constraint without forking; kills the path if infeasible. *)

val concretize : 'ev env -> Expr.bv -> int64
(** Pin an expression to one representative concrete value under the
    current path condition, committing the equality.  Replays
    deterministically. *)

val cover : 'ev env -> Coverage.point -> unit
(** Mark an instrumentation point as covered on this path. *)

val path_condition : 'ev env -> Expr.boolean list

(** {1 Exploration driver} *)

val run :
  ?strategy:Strategy.t ->
  ?max_paths:int ->
  ?max_decisions:int ->
  ?max_attempts:int ->
  ?use_interval:bool ->
  ?deadline_ms:int ->
  ?solver_budget:Solver.budget ->
  ('ev env -> unit) ->
  'ev run_result
(** [run program] explores [program] until the frontier empties or a budget
    is hit.  [max_paths] bounds completed paths (default unlimited);
    [max_decisions] bounds symbolic decisions per path (default 4096, a
    loop safeguard); [max_attempts] bounds re-executions including aborted
    and truncated ones (default [2*max_paths + 1024]); [use_interval]
    enables the interval feasibility pre-filter (default true);
    [deadline_ms] bounds the whole exploration's wall-clock time (paths in
    flight finish, no new frontier items start — [deadline_hit] records the
    cut); [solver_budget] bounds each feasibility query, with exhausted
    arms degrading to "not taken" and counted in [solver_unknowns].

    A path that raises an exception other than {!Path_crash}/{!Path_abort}
    is recorded as a crashed path (counted in [exceptions]) instead of
    aborting the run; [Out_of_memory], {!Smt.Solver.Solver_error} and any
    exception accepted by a {!register_fatal} predicate still propagate. *)

val register_fatal : (exn -> bool) -> unit
(** Register a predicate for exceptions the per-path crash isolation must
    re-raise rather than record as a crash path.  Fault injection uses
    this for its marker exception: an injected fault recorded as agent
    behaviour could alter a verdict, so it must abort the run loudly.
    Registration is global and permanent. *)

val pp_stats : Format.formatter -> run_stats -> unit
