(* Search strategies over the pending-path frontier.

   The engine's frontier holds replay scripts for unexplored branch
   alternatives; a strategy decides which to run next.  [Interleave] mimics
   the default Cloud9 strategy the paper uses: alternate a uniformly random
   path choice with a choice biased toward forks created at not-yet-covered
   branch points.  Because SOFT drives inputs toward exhaustive coverage,
   the strategy choice barely affects the end result (paper §4.1) — but it
   affects the order in which inconsistency-revealing paths appear. *)

type t =
  | Dfs
  | Bfs
  | Random of int (* seed *)
  | Interleave of int (* seed; Cloud9-style random + coverage-biased mix *)

let default = Interleave 42

let to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random seed -> Printf.sprintf "random:%d" seed
  | Interleave seed -> Printf.sprintf "interleave:%d" seed

(* [random] and [interleave] accept an explicit [:<seed>] so runs are
   reproducible end to end; the bare names keep the historical seed 42.
   [to_string] round-trips through [of_string]. *)
let of_string s =
  match String.index_opt s ':' with
  | None -> (
    match String.lowercase_ascii s with
    | "dfs" -> Some Dfs
    | "bfs" -> Some Bfs
    | "random" -> Some (Random 42)
    | "interleave" | "default" -> Some default
    | _ -> None)
  | Some i -> (
    let name = String.lowercase_ascii (String.sub s 0 i) in
    let seed = int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) in
    (* a malformed seed is an error, not silently 42; dfs/bfs take none *)
    match (name, seed) with
    | "random", Some seed -> Some (Random seed)
    | "interleave", Some seed -> Some (Interleave seed)
    | _ -> None)

(* A frontier with O(1)-ish pick for each policy.  Items carry an [age]
   (insertion order) and a [fresh] flag (fork at an uncovered branch). *)
type 'a frontier = {
  strategy : t;
  mutable items : (int * bool * 'a) list; (* age, fresh, item *)
  mutable next_age : int;
  rng : Random.State.t;
  mutable tick : int;
}

let create strategy =
  let seed = match strategy with Random s | Interleave s -> s | Dfs | Bfs -> 0 in
  {
    strategy;
    items = [];
    next_age = 0;
    rng = Random.State.make [| seed |];
    tick = 0;
  }

let add f ~fresh item =
  f.items <- (f.next_age, fresh, item) :: f.items;
  f.next_age <- f.next_age + 1

let is_empty f = f.items = []
let length f = List.length f.items

let take_nth f n =
  let rec go i acc = function
    | [] -> invalid_arg "take_nth"
    | x :: rest ->
      if i = n then begin
        f.items <- List.rev_append acc rest;
        x
      end
      else go (i + 1) (x :: acc) rest
  in
  go 0 [] f.items

let pop f =
  match f.items with
  | [] -> None
  | _ ->
    let n = List.length f.items in
    let _, _, item =
      match f.strategy with
      | Dfs ->
        (* newest first: items is a stack *)
        take_nth f 0
      | Bfs ->
        (* oldest first *)
        let oldest = ref 0 and best_age = ref max_int in
        List.iteri
          (fun i (age, _, _) ->
            if age < !best_age then begin
              best_age := age;
              oldest := i
            end)
          f.items;
        take_nth f !oldest
      | Random _ -> take_nth f (Random.State.int f.rng n)
      | Interleave _ ->
        f.tick <- f.tick + 1;
        if f.tick land 1 = 0 then take_nth f (Random.State.int f.rng n)
        else begin
          (* prefer a fork flagged fresh (uncovered branch); fall back to
             random *)
          let idx = ref (-1) in
          List.iteri (fun i (_, fresh, _) -> if fresh && !idx < 0 then idx := i) f.items;
          if !idx >= 0 then take_nth f !idx else take_nth f (Random.State.int f.rng n)
        end
    in
    Some item
