(** Search strategies over the engine's pending-path frontier.

    [Interleave] mimics the default Cloud9 strategy the paper uses: it
    alternates a uniformly random choice with a choice biased toward forks
    created at not-yet-covered branch points.  Because SOFT's structured
    inputs drive exploration toward exhaustion, the strategy choice barely
    affects the end result (paper §4.1) — only the order findings appear. *)

type t =
  | Dfs
  | Bfs
  | Random of int  (** seed *)
  | Interleave of int  (** seed; random + coverage-biased mix *)

val default : t

val to_string : t -> string
(** [random:<seed>]/[interleave:<seed>] — round-trips through
    {!of_string}. *)

val of_string : string -> t option
(** Accepts [dfs], [bfs], [random], [interleave], [default], and seeded
    forms [random:<seed>]/[interleave:<seed>].  Bare [random]/[interleave]
    keep the historical seed 42; a malformed seed is [None], never a
    silent fallback. *)

(** {1 Frontier} (used by the engine) *)

type 'a frontier

val create : t -> 'a frontier

val add : 'a frontier -> fresh:bool -> 'a -> unit
(** [fresh] flags a fork created at an uncovered branch point. *)

val pop : 'a frontier -> 'a option
val is_empty : 'a frontier -> bool
val length : 'a frontier -> int
