(** Crash-only crosscheck service: a WAL-backed job store, a
    content-addressed result store, and a daemon drain loop over the
    supervised crosscheck pipeline.

    All durable state lives under one service directory (spool queue,
    write-ahead log, store, reports), and {!open_service} — which
    replays the WAL — is the {e only} startup path: a fresh directory is
    the recovery of an empty log.  [kill -9] at any instant loses at
    most the units in flight; everything acknowledged is behind an
    fsynced WAL record, and a recovered daemon reproduces the exact
    report bytes an uninterrupted one would have written.

    Results are content-addressed: phase-1 runs by (agent, scenario
    hash, path budget), verdicts by (fingerprint A, fingerprint B,
    scenario hash, solver signature).  Resubmitting an unchanged job is
    answered entirely from the store with zero new SAT calls; after an
    agent edit ([~fresh:true]) only partitions whose fingerprint changed
    re-solve.

    Under pressure the service degrades instead of dying: a soft heap
    watermark sheds the solver cache and drops to one worker, a hard
    watermark stops admitting spool files so submitters see
    [`Backpressure]. *)

type config

val config :
  ?max_paths:int ->
  ?jobs:int ->
  ?supervise:Harness.Supervise.policy ->
  ?crash_limit:int ->
  ?max_pending:int ->
  ?soft_mb:int ->
  ?hard_mb:int ->
  ?fsync:bool ->
  ?on_warning:(string -> unit) ->
  agents:(string * Switches.Agent_intf.t) list ->
  unit ->
  config
(** [agents] resolves job agent names; [max_paths] is the phase-1 path
    budget (part of the phase-1 store key); [jobs] the crosscheck worker
    count (never part of any key: reports are byte-identical at any
    [jobs]); [crash_limit] (default 3) is how many [start] records
    without a verdict quarantine a unit as a crash-looper on recovery;
    [max_pending] (default 64) the spool depth at which {!submit}
    bounces; [soft_mb]/[hard_mb] the degradation watermarks; [fsync]
    (default true) may be disabled for tests only.
    @raise Invalid_argument if [jobs < 1] or [crash_limit < 1]. *)

type t
(** An open service: recovered state plus an append handle on the WAL. *)

val open_service : config -> string -> t
(** Recover (and compact) the service rooted at the directory: replay
    the WAL, discard its torn tail, drop verdicts whose store payload is
    missing, quarantine crash-looping units, rebuild missing reports,
    finalize jobs whose last verdict landed but whose [done] record did
    not, and dedup spool files already journaled.  Creates the directory
    tree on first use. *)

val close : t -> unit

val serve : ?once:bool -> ?poll_ms:int -> ?max_units:int -> t -> unit
(** Drain the queue: admit spool submissions into the WAL, then run
    units (one (agent A, agent B, test) triple each) in deterministic
    submission order.  [once] returns when queue and WAL hold no
    runnable unit instead of polling every [poll_ms] (default 200);
    [max_units] stops after that many units (tests use it to simulate a
    kill at a chosen point).  May raise {!Harness.Chaos.Injected_fault}
    under a fault plan — treat exactly as a crash: drop [t] and recover
    via {!open_service}. *)

val submit :
  ?fresh:bool ->
  ?max_pending:int ->
  string ->
  agent_a:string ->
  agent_b:string ->
  tests:string list ->
  (string, [ `Backpressure of int ]) result
(** Client-side enqueue into the service directory's spool; shares no
    state with the daemon.  [fresh] forces phase-1 re-execution (use
    after editing an agent model); verdict caching by fingerprint still
    applies.  Refuses with [`Backpressure depth] at the pending
    watermark.
    @raise Invalid_argument on an empty test list. *)

val report : string -> string -> string option
(** [report dir job_id] reads a finalized job report, if present. *)

(** {1 Introspection} *)

val replayed_records : t -> int
(** WAL records recovered at {!open_service}. *)

val requeued_units : t -> int
(** Units found in flight (started, unsettled) and re-enqueued. *)

val degraded : t -> bool
(** Whether the soft watermark has forced single-worker operation. *)

val sheds : t -> int
(** Cache sheds performed under memory pressure. *)

type status = {
  ss_jobs : int;
  ss_jobs_done : int;
  ss_units : int;
  ss_units_settled : int;
  ss_units_quarantined : int;
  ss_verdicts_lost : int;
      (** verdict records whose store payload is gone; recovery re-runs
          these, so a quiescent service always shows 0 *)
  ss_queue_depth : int;
  ss_store_entries : int;
  ss_wal_records : int;
}

val status : string -> status
(** Read-only snapshot of a service directory — works whether or not a
    daemon is running (it replays the WAL without writing). *)

val pp_status : Format.formatter -> status -> unit
