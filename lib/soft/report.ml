(* Root-cause triage of inconsistencies.  The paper observes that one
   underlying difference usually manifests as many reported inconsistencies
   (58 reports, 6 root causes in the extreme Eth FlowMod case); this module
   classifies each inconsistency into the behaviour classes of §5.1.2 and
   deduplicates reports per class for human review. *)

module Trace = Openflow.Trace

type cause_class =
  | Agent_crash (* one agent terminates with an error *)
  | Missing_error (* one agent errors, the other stays silent *)
  | Different_errors (* both error, with different type/code *)
  | Rejected_vs_applied (* error on one side, observable effect on the other *)
  | Forwarding_difference (* both act on the packet, differently *)
  | State_difference (* divergence visible only through probes *)
  | Other

let class_name = function
  | Agent_crash -> "agent terminates with an error"
  | Missing_error -> "lack of error message"
  | Different_errors -> "different error / validation order"
  | Rejected_vs_applied -> "message rejected vs applied"
  | Forwarding_difference -> "forwarding difference / missing feature"
  | State_difference -> "state difference revealed by probe"
  | Other -> "other behavioural difference"

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let first_error (r : Trace.result) = List.find_opt (has_prefix "of:error") r.Trace.trace
let has_output (r : Trace.result) =
  List.exists (fun l -> has_prefix "dp:tx" l || has_prefix "of:packet_in" l) r.Trace.trace
let probe_lines (r : Trace.result) = List.filter (has_prefix "probe") r.Trace.trace
let is_silent (r : Trace.result) = r.Trace.trace = [] && r.Trace.crash = None

let classify (inc : Crosscheck.inconsistency) =
  let a = inc.Crosscheck.i_result_a and b = inc.i_result_b in
  if a.Trace.crash <> None || b.Trace.crash <> None then Agent_crash
  else
    match (first_error a, first_error b) with
    | Some _, None when is_silent b || not (has_output b) -> Missing_error
    | None, Some _ when is_silent a || not (has_output a) -> Missing_error
    | Some ea, Some eb when ea <> eb -> Different_errors
    | Some _, None | None, Some _ -> Rejected_vs_applied
    | Some _, Some _ | None, None ->
      if probe_lines a <> probe_lines b then State_difference
      else if has_output a || has_output b then Forwarding_difference
      else Other

type summary = {
  s_class : cause_class;
  s_count : int;
  s_example : Crosscheck.inconsistency;
}

(* One representative per behaviour class: the deduplication a human
   performs in the paper's analysis. *)
let summarize (o : Crosscheck.outcome) =
  let tbl : (cause_class, int ref * Crosscheck.inconsistency) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun inc ->
      let c = classify inc in
      match Hashtbl.find_opt tbl c with
      | Some (n, _) -> incr n
      | None -> Hashtbl.add tbl c (ref 1, inc))
    o.Crosscheck.o_inconsistencies;
  Hashtbl.fold (fun c (n, ex) acc -> { s_class = c; s_count = !n; s_example = ex } :: acc) tbl []
  |> List.sort (fun x y -> compare y.s_count x.s_count)

(* Exit-status policy for the CLI (and anything scripting it):
     0 — clean: no inconsistencies, nothing undecided, nothing unvalidated;
     1 — inconsistencies found (replay-confirmed ones, when validation ran);
     2 — usage error (mapped by the CLI, never produced here);
     3 — inconclusive: undecided pairs, faulted pairs, or reported
         inconsistencies that validation refuted or failed to replay.
   Finding a real divergence (1) outranks being inconclusive (3): a
   scripted gate must fail hard on a confirmed interoperability bug even
   if parts of the check also gave up. *)
(* Same policy from bare counters: the service daemon replays verdict
   counts out of its WAL and must rank a whole job without rebuilding any
   [Crosscheck.outcome].  [faults] covers pair faults and quarantines —
   both leave pairs undecided. *)
let exit_of_counts ~inconsistencies ~undecided ~faults =
  if inconsistencies > 0 then 1 else if undecided > 0 || faults > 0 then 3 else 0

let exit_status ?validation (o : Crosscheck.outcome) =
  let confirmed, unvalidated =
    match validation with
    | None -> (Crosscheck.count o, 0)
    | Some v -> (v.Validate.vs_confirmed, Validate.unconfirmed v)
  in
  if confirmed > 0 then 1
  else if
    unvalidated > 0 || o.Crosscheck.o_pairs_undecided <> [] || o.Crosscheck.o_pair_faults > 0
  then 3
  else 0

let pp_summary fmt (ss : summary list) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%3d x %s@    e.g. %s@      vs %s@ " s.s_count (class_name s.s_class)
        (Trace.result_key s.s_example.Crosscheck.i_result_a)
        (Trace.result_key s.s_example.i_result_b))
    ss;
  Format.fprintf fmt "@]"
