(* Oracles and workloads for fault-schedule exploration (see the .mli).

   The crosscheck workload is built so that every one of its draw sites
   is stable across runs and across worker counts: phase 1 is cached
   outside the fault space, pair-scoped draws are keyed by pair index
   (PR 9's discipline), and cache hits consume the same query-hook draws
   the solve they replaced would have (PR 8's alignment) — so the site
   universe recorded once is the universe every scripted replay sees. *)

module Chaos = Harness.Chaos
module Explore = Harness.Explore

type obs = {
  ob_stable : string;
  ob_recovered : string;
  ob_incs : (string * string) list;
  ob_pairs_checked : int;
  ob_undecided : (string * string) list;
  ob_faults : int;
  ob_exit : int;
  ob_wall_s : float;
  ob_signal : string list;
}

let inc_keys (o : Crosscheck.outcome) =
  List.map
    (fun (i : Crosscheck.inconsistency) ->
      ( Openflow.Trace.result_key i.Crosscheck.i_result_a,
        Openflow.Trace.result_key i.Crosscheck.i_result_b ))
    o.Crosscheck.o_inconsistencies

let observe ?recovered ?(wall_s = 0.0) (o : Crosscheck.outcome) =
  let stable = Crosscheck.render_stable o in
  {
    ob_stable = stable;
    ob_recovered = Option.value ~default:stable recovered;
    ob_incs = inc_keys o;
    ob_pairs_checked = o.Crosscheck.o_pairs_checked;
    ob_undecided = o.Crosscheck.o_pairs_undecided;
    ob_faults = o.Crosscheck.o_pair_faults;
    ob_exit = Report.exit_status o;
    ob_wall_s = wall_s;
    ob_signal = [];
  }

let oracles ?(max_wall_s = 300.0) ~baseline obs =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun m -> v := m :: !v) fmt in
  if obs.ob_pairs_checked <> baseline.ob_pairs_checked then
    add "pairs compared changed: %d vs baseline %d" obs.ob_pairs_checked
      baseline.ob_pairs_checked;
  List.iter
    (fun (ka, kb) ->
      if not (List.mem (ka, kb) baseline.ob_incs) then
        add "invented inconsistency (%s, %s)" ka kb)
    obs.ob_incs;
  List.iter
    (fun (ka, kb) ->
      if (not (List.mem (ka, kb) obs.ob_incs)) && not (List.mem (ka, kb) obs.ob_undecided)
      then add "verdict (%s, %s) lost to something other than undecided" ka kb)
    baseline.ob_incs;
  if obs.ob_faults > List.length obs.ob_undecided then
    add "fault count %d exceeds undecided count %d" obs.ob_faults
      (List.length obs.ob_undecided);
  let expected =
    Report.exit_of_counts
      ~inconsistencies:(List.length obs.ob_incs)
      ~undecided:(List.length obs.ob_undecided)
      ~faults:obs.ob_faults
  in
  if obs.ob_exit <> expected then
    add "exit taxonomy broken: reported %d, counters say %d" obs.ob_exit expected;
  if obs.ob_recovered <> baseline.ob_stable then
    add "kill-and-recover report diverged from the clean run's bytes";
  if obs.ob_wall_s > max_wall_s then
    add "wall clock %.1fs exceeded the %.1fs bound" obs.ob_wall_s max_wall_s;
  List.rev !v

(* --- the crosscheck workload ------------------------------------------ *)

let quiet _ = ()

let crosscheck_workload ?(max_paths = Harness.Runner.default_max_paths) ?(jobs = 1)
    ?max_wall_s ~a ~b (spec : Harness.Test_spec.t) =
  (* phase 1 once, outside the fault space: exploration targets the
     crosscheck, and re-running symbolic execution per schedule would
     dominate every budget *)
  let ga = Grouping.of_run (Harness.Runner.execute ~max_paths a spec) in
  let gb = Grouping.of_run (Harness.Runner.execute ~max_paths b spec) in
  let w_run () =
    let t0 = Unix.gettimeofday () in
    let ckpt = Filename.temp_file "soft_explore_ckpt" ".txt" in
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists ckpt then Sys.remove ckpt;
        Smt.Mono.reset_skew ())
      (fun () ->
        let o =
          Crosscheck.check ~jobs ~checkpoint:ckpt ~checkpoint_every:4 ~on_warning:quiet
            ga gb
        in
        (* recovery leg: chaos off, clock healed, resume from whatever
           snapshot the faulted leg left behind (possibly truncated —
           then a warned cold start).  Faulted pairs are excluded from
           checkpoints, so a fault-free resume must land exactly on the
           clean run's verdicts: its stable bytes are the recovery
           oracle's subject. *)
        let plan = Chaos.current () in
        Chaos.deactivate ();
        Smt.Mono.reset_skew ();
        let r =
          Fun.protect
            ~finally:(fun () -> Option.iter Chaos.install plan)
            (fun () -> Crosscheck.check ~jobs ~resume:ckpt ~on_warning:quiet ga gb)
        in
        observe o ~recovered:(Crosscheck.render_stable r)
          ~wall_s:(Unix.gettimeofday () -. t0))
  in
  {
    Explore.w_name = spec.Harness.Test_spec.id;
    w_run;
    w_oracle = (fun ~baseline obs -> oracles ?max_wall_s ~baseline obs);
  }

(* --- the synthetic pure-draw workload --------------------------------- *)

let synthetic_keys = 12
let synthetic_poison = (3, 7)

let synthetic_pair_workload () =
  let w_run () =
    let fired = ref [] in
    for k = 0 to synthetic_keys - 1 do
      (* two draws per key: indices 0 and 1 of each keyed stream *)
      for i = 0 to 1 do
        if Chaos.fires ~key:k Chaos.Solver_fault then
          fired := Printf.sprintf "k%d/%d" k i :: !fired
      done
    done;
    {
      ob_stable = "";
      ob_recovered = "";
      ob_incs = [];
      ob_pairs_checked = 0;
      ob_undecided = [];
      ob_faults = 0;
      ob_exit = 0;
      ob_wall_s = 0.0;
      ob_signal = List.rev !fired;
    }
  in
  let w_oracle ~baseline:_ obs =
    let a, b = synthetic_poison in
    if
      List.mem (Printf.sprintf "k%d/0" a) obs.ob_signal
      && List.mem (Printf.sprintf "k%d/0" b) obs.ob_signal
    then
      [
        Printf.sprintf "synthetic invariant: sites k%d/0 and k%d/0 both fired" a b;
      ]
    else []
  in
  { Explore.w_name = "synthetic-pair"; w_run; w_oracle }

(* --- the registry ----------------------------------------------------- *)

let synthetic_name = "synthetic-pair"

let workloads () =
  List.map (fun (t : Harness.Test_spec.t) -> t.Harness.Test_spec.id)
    (Harness.Test_spec.all ())
  @ [ synthetic_name ]

let workload ?max_paths ?jobs ?max_wall_s ~a ~b name =
  if name = synthetic_name then Ok (synthetic_pair_workload ())
  else
    match Harness.Test_spec.by_id name with
    | Some spec -> Ok (crosscheck_workload ?max_paths ?jobs ?max_wall_s ~a ~b spec)
    | None ->
      Error
        (Printf.sprintf "unknown workload %s (available: %s)" name
           (String.concat ", " (workloads ())))
