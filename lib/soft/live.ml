(* Live-wire replay: see live.mli for the protocol contract.

   The replay envelope is a SOFT vendor message (OpenFlow type 4) whose
   body is [subtype:u16][arg:u16][payload]:

     subtype 1  raw control message — payload is the inner message's
                exact reproducer bytes (possibly deliberately malformed;
                the envelope keeps the stream framable anyway)
     subtype 2  probe — arg is the probe id, payload is
                [in_port:u16][packet bytes]
     subtype 3  advance virtual time — payload is [seconds:u32]
     subtype 4  observation (switch → controller) — arg 0 carries the
                normalized trace key in payload, arg 1 an error text

   The server consumes every shell message (hello, features, echo,
   barrier, envelope) itself and feeds the agent only the reconstructed
   witness inputs, so the agent sees exactly the input sequence an
   in-process replay drives and the trace keys stay comparable. *)

module Conn = Openflow.Conn
module Types = Openflow.Types
module Sym_msg = Openflow.Sym_msg
module Trace = Openflow.Trace
module Test_spec = Harness.Test_spec
module Proc = Harness.Proc
module Supervise = Harness.Supervise
module Chaos = Harness.Chaos
module SP = Packet.Sym_packet

(* Bridge the transport chaos points into the connection layer, which
   sits below the harness and cannot draw them itself. *)
let () =
  Conn.set_fault_hook (function
    | Conn.F_torn_frame -> Chaos.fires Chaos.Torn_frame
    | Conn.F_conn_reset -> Chaos.fires Chaos.Conn_reset
    | Conn.F_read_stall -> Chaos.fires Chaos.Read_stall)

let soft_vendor_id = 0x50f750f7l

let st_raw_msg = 1
let st_probe = 2
let st_advance = 3
let st_observation = 4

let u8 s off = Char.code s.[off]
let u16 s off = (u8 s off lsl 8) lor u8 s (off + 1)
let u32 s off = (u16 s off lsl 16) lor u16 s (off + 2)

let be16 n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xff))
let be32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

let envelope ?(arg = 0) subtype payload =
  {
    Types.xid = 0x50f70001l;
    payload =
      Types.Vendor { vendor = soft_vendor_id; vendor_body = be16 subtype ^ be16 arg ^ payload };
  }

exception Server_error of string
(* The peer executed the witness but could not produce an observation
   (input decode failure, agent run failure): not a transport fault, but
   still no verdict for this witness. *)

(* --- the loopback switch server ----------------------------------------- *)

(* Rebuild a Test_spec input from one envelope.  Errors are recorded, not
   raised: the witness must still reach its barrier so the client gets an
   error observation instead of a dead connection. *)
let input_of_envelope ~subtype ~arg payload =
  if subtype = st_raw_msg then Test_spec.Msg (Sym_msg.of_wire payload)
  else if subtype = st_probe then begin
    if String.length payload < 2 then failwith "probe envelope shorter than its in_port";
    let pkt = Packet.Headers.of_bytes (String.sub payload 2 (String.length payload - 2)) in
    Test_spec.Probe { pr_id = arg; pr_in_port = u16 payload 0; pr_packet = SP.of_concrete pkt }
  end
  else if subtype = st_advance then begin
    if String.length payload < 4 then failwith "advance-time envelope shorter than u32";
    Test_spec.Advance_time (u32 payload 0)
  end
  else failwith (Printf.sprintf "unknown envelope subtype %d" subtype)

let execute_observation ~max_paths agent inputs =
  let spec =
    {
      Test_spec.id = "live-replay";
      label = "live replay";
      description = "witness inputs replayed over the wire";
      message_count = List.length inputs;
      inputs;
    }
  in
  match Harness.Runner.execute ~max_paths agent spec with
  | { Harness.Runner.run_paths = { pr_result; _ } :: _; _ } -> Ok (Trace.result_key pr_result)
  | { Harness.Runner.run_paths = []; _ } -> Error "replay explored no path"
  | exception Out_of_memory -> raise Out_of_memory
  | exception e -> Error (Printf.sprintf "replay raised %s" (Printexc.to_string e))

let handle_connection ~max_paths ~idle_deadline_ms ~crash_after_barriers ~barriers agent conn =
  Conn.handshake_switch ~deadline_ms:idle_deadline_ms conn;
  (* Inputs accumulated since the last barrier, newest first; [broken]
     remembers the first decode failure of the batch. *)
  let inputs = ref [] and broken = ref None in
  let reset () =
    inputs := [];
    broken := None
  in
  let rec loop () =
    let m = Conn.recv_msg ~deadline_ms:idle_deadline_ms conn in
    (match m.Types.payload with
     | Types.Echo_request p ->
       Conn.send_msg conn { m with Types.payload = Types.Echo_reply p }
     | Types.Vendor { vendor; vendor_body } when vendor = soft_vendor_id ->
       if String.length vendor_body < 4 then broken := Some "envelope shorter than its header"
       else begin
         let subtype = u16 vendor_body 0 and arg = u16 vendor_body 2 in
         let payload = String.sub vendor_body 4 (String.length vendor_body - 4) in
         match input_of_envelope ~subtype ~arg payload with
         | input -> inputs := input :: !inputs
         | exception e ->
           if !broken = None then broken := Some (Printexc.to_string e)
       end
     | Types.Barrier_request ->
       let observation =
         match !broken with
         | Some err -> Error err
         | None -> execute_observation ~max_paths agent (List.rev !inputs)
       in
       reset ();
       (match observation with
        | Ok key -> Conn.send_msg conn (envelope ~arg:0 st_observation key)
        | Error err -> Conn.send_msg conn (envelope ~arg:1 st_observation err));
       Conn.send_msg conn { m with Types.payload = Types.Barrier_reply };
       incr barriers;
       (match crash_after_barriers with
        | Some n when !barriers >= n ->
          (* The CI lever: die the hard way, mid-conversation. *)
          Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ())
     | _ ->
       (* A stray well-formed message outside the replay protocol: a real
          switch would process it, but feeding it to the agent would make
          the live trace diverge from the in-process one — drop it. *)
       ());
    loop ()
  in
  loop ()

let serve ?(max_paths = 64) ?crash_after_barriers ?max_conns ?(idle_deadline_ms = 30_000)
    ?on_listening agent addr =
  let lfd = Conn.listen addr in
  (match on_listening with Some f -> f () | None -> ());
  let barriers = ref 0 in
  let served = ref 0 in
  let idle_quit = ref false in
  let continue () =
    (not !idle_quit) && match max_conns with None -> true | Some n -> !served < n
  in
  (try
     while continue () do
       match Conn.accept ~deadline_ms:idle_deadline_ms lfd with
       | conn ->
         incr served;
         (try
            handle_connection ~max_paths ~idle_deadline_ms ~crash_after_barriers ~barriers
              agent conn
          with Conn.Peer_fault _ | Conn.Timeout _ -> ());
         Conn.close conn
       | exception Conn.Timeout _ ->
         (* an unbounded server keeps listening through idle periods; a
            bounded one that nobody connects to anymore is done *)
         if max_conns <> None then idle_quit := true
     done
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  try Unix.close lfd with Unix.Unix_error _ -> ()

(* --- the live validation client ----------------------------------------- *)

type endpoint = { ep_agent : string; ep_addr : Conn.addr; ep_cmd : string option }

type status = L_confirmed | L_refuted | L_failed of Supervise.taxonomy * string

type result = { l_status : status; l_key_a : string option; l_key_b : string option }

type summary = {
  ls_agent_a : string;
  ls_agent_b : string;
  ls_test : string;
  ls_confirmed : int;
  ls_refuted : int;
  ls_failed : int;
  ls_reconnects : int;
  ls_restarts : int;
  ls_results : result list;
}

(* Live connection state of one endpoint: the socket, and the supervised
   child when the endpoint is ours to restart. *)
type live_ep = {
  le_spec : endpoint;
  le_key : int; (* deterministic-jitter key: endpoint index *)
  mutable le_conn : Conn.t option;
  mutable le_proc : Proc.t option;
}

let can_connect addr =
  match Conn.connect ~timeout_ms:250 addr with
  | c ->
    Conn.close c;
    true
  | exception (Conn.Peer_fault _ | Conn.Timeout _) -> false

let connect_ep ~attempts ~deadline_ms ep =
  let c = Conn.connect_backoff ~attempts ~key:ep.le_key ep.le_spec.ep_addr in
  match Conn.handshake_controller ~deadline_ms c with
  | (_ : Types.switch_features) -> ep.le_conn <- Some c
  | exception e ->
    Conn.close c;
    raise e

let start_ep_proc ep =
  match ep.le_spec.ep_cmd with
  | None -> ()
  | Some cmd ->
    (match
       Proc.start_supervised ~key:ep.le_key cmd ~ready:(fun () -> can_connect ep.le_spec.ep_addr)
     with
     | Ok p -> ep.le_proc <- Some p
     | Error (tax, msg) ->
       raise
         (Server_error
            (Printf.sprintf "%s: switch process %s: %s" ep.le_spec.ep_agent
               (Supervise.taxonomy_to_string tax) msg)))

let teardown_ep ep =
  (match ep.le_conn with Some c -> Conn.close c | None -> ());
  ep.le_conn <- None;
  match ep.le_proc with
  | Some p ->
    ignore (Proc.stop p : Proc.status);
    ep.le_proc <- None
  | None -> ()

(* One recovery pass after a mid-witness failure: drop the dead socket,
   restart the switch if it is ours and it died, reconnect, re-handshake.
   Counts what it did so the summary can report supervision activity. *)
let recover_ep ~attempts ~deadline_ms ~reconnects ~restarts ep =
  (match ep.le_conn with Some c -> Conn.close c | None -> ());
  ep.le_conn <- None;
  let restart () =
    (match ep.le_proc with
     | Some p ->
       ignore (Proc.stop p : Proc.status);
       ep.le_proc <- None
     | None -> ());
    start_ep_proc ep;
    incr restarts
  in
  (match (ep.le_spec.ep_cmd, ep.le_proc) with
   | Some _, Some p when not (Proc.alive p) -> restart ()
   | Some _, None -> restart ()
   | _ -> ());
  (match connect_ep ~attempts ~deadline_ms ep with
   | () -> ()
   | exception Out_of_memory -> raise Out_of_memory
   | exception (Conn.Peer_fault _ | Conn.Timeout _) when ep.le_spec.ep_cmd <> None ->
     (* The shell/setsid wrapper can outlive the switch it started by a
        few milliseconds, so a live [Proc.t] does not prove the service
        is up.  When reconnecting to an endpoint we own still fails,
        trust the socket over the pid: restart the whole tree and try
        once more before giving up on this recovery. *)
     restart ();
     connect_ep ~attempts ~deadline_ms ep);
  incr reconnects

let conn_of ep =
  match ep.le_conn with
  | Some c -> c
  | None -> raise (Conn.Peer_fault (ep.le_spec.ep_agent ^ ": no live connection"))

(* Send one witness's inputs and barrier through [ep], return the
   observation key. *)
let replay_witness ~deadline_ms ep (spec : Test_spec.t) witness =
  let c = conn_of ep in
  List.iter
    (fun input ->
      let msg =
        match input with
        | Test_spec.Msg m -> envelope st_raw_msg (Sym_msg.concretize_wire witness m)
        | Test_spec.Probe { pr_id; pr_in_port; pr_packet } ->
          let pkt = SP.to_concrete witness pr_packet in
          envelope ~arg:pr_id st_probe (be16 pr_in_port ^ Packet.Headers.to_bytes pkt)
        | Test_spec.Advance_time s -> envelope st_advance (be32 s)
      in
      Conn.send_msg ~deadline_ms c msg)
    spec.Test_spec.inputs;
  Conn.send_msg ~deadline_ms c { Types.xid = 0x50f70002l; payload = Types.Barrier_request };
  (* The observation precedes the barrier reply; tolerate either order
     and answer keepalives, but nothing else belongs here. *)
  let observation = ref None in
  let rec await () =
    let m = Conn.recv_msg ~deadline_ms c in
    match m.Types.payload with
    | Types.Echo_request p ->
      Conn.send_msg ~deadline_ms c { m with Types.payload = Types.Echo_reply p };
      await ()
    | Types.Vendor { vendor; vendor_body }
      when vendor = soft_vendor_id
           && String.length vendor_body >= 4
           && u16 vendor_body 0 = st_observation ->
      let text = String.sub vendor_body 4 (String.length vendor_body - 4) in
      if u16 vendor_body 2 = 0 then observation := Some text
      else raise (Server_error (ep.le_spec.ep_agent ^ ": " ^ text));
      await ()
    | Types.Barrier_reply ->
      (match !observation with
       | Some key -> key
       | None -> raise (Server_error (ep.le_spec.ep_agent ^ ": barrier reply without observation")))
    | _ -> await ()
  in
  await ()

let classify_failure = function
  | Server_error msg -> (Supervise.Crashed, msg)
  | e -> Proc.classify_transport e

(* Replay through one endpoint with a single recovery-and-retry: the
   first failure triggers reconnect/restart, the second is a verdictless
   degrade for this witness — never an abort. *)
let replay_resilient ~attempts ~deadline_ms ~reconnects ~restarts ep spec witness =
  let attempt () = replay_witness ~deadline_ms ep spec witness in
  match attempt () with
  | key -> Ok key
  | exception Out_of_memory -> raise Out_of_memory
  | exception first -> (
    match
      recover_ep ~attempts ~deadline_ms ~reconnects ~restarts ep;
      attempt ()
    with
    | key -> Ok key
    | exception Out_of_memory -> raise Out_of_memory
    | exception second ->
      ignore second;
      Error (classify_failure first))

let validate_live ?(deadline_ms = 10_000) ?(connect_attempts = 4) ~a ~b
    (spec : Test_spec.t) (outcome : Crosscheck.outcome) =
  let reconnects = ref 0 and restarts = ref 0 in
  let ea = { le_spec = a; le_key = 0; le_conn = None; le_proc = None } in
  let eb = { le_spec = b; le_key = 1; le_conn = None; le_proc = None } in
  let setup ep =
    match
      start_ep_proc ep;
      connect_ep ~attempts:connect_attempts ~deadline_ms ep
    with
    | () -> None
    | exception Out_of_memory -> raise Out_of_memory
    | exception e -> Some (classify_failure e)
  in
  let setup_failure = match setup ea with None -> setup eb | some -> some in
  let results =
    List.map
      (fun (inc : Crosscheck.inconsistency) ->
        match setup_failure with
        | Some (tax, msg) -> { l_status = L_failed (tax, msg); l_key_a = None; l_key_b = None }
        | None ->
          let ra =
            replay_resilient ~attempts:connect_attempts ~deadline_ms ~reconnects ~restarts ea
              spec inc.Crosscheck.i_witness
          in
          let rb =
            replay_resilient ~attempts:connect_attempts ~deadline_ms ~reconnects ~restarts eb
              spec inc.Crosscheck.i_witness
          in
          let status =
            match (ra, rb) with
            | Ok ka, Ok kb -> if ka <> kb then L_confirmed else L_refuted
            | Error (tax, msg), _ | _, Error (tax, msg) -> L_failed (tax, msg)
          in
          {
            l_status = status;
            l_key_a = (match ra with Ok k -> Some k | Error _ -> None);
            l_key_b = (match rb with Ok k -> Some k | Error _ -> None);
          })
      outcome.Crosscheck.o_inconsistencies
  in
  teardown_ep ea;
  teardown_ep eb;
  let count p = List.length (List.filter p results) in
  {
    ls_agent_a = a.ep_agent;
    ls_agent_b = b.ep_agent;
    ls_test = outcome.Crosscheck.o_test;
    ls_confirmed = count (fun r -> r.l_status = L_confirmed);
    ls_refuted = count (fun r -> r.l_status = L_refuted);
    ls_failed = count (fun r -> match r.l_status with L_failed _ -> true | _ -> false);
    ls_reconnects = !reconnects;
    ls_restarts = !restarts;
    ls_results = results;
  }

let failed s = s.ls_failed

let exit_status s =
  if s.ls_confirmed > 0 then 1 else if s.ls_refuted > 0 || s.ls_failed > 0 then 3 else 0

(* The live verdict supersedes the symbolic inconsistency rank (it
   re-tested those same witnesses on real transport); a live run with
   nothing to test defers to the base status. *)
let merge_exit base live = if live = 1 then 1 else if live = 3 then 3 else base

let status_name = function
  | L_confirmed -> "live-confirmed"
  | L_refuted -> "live-REFUTED"
  | L_failed (tax, _) -> "transport-failed/" ^ Supervise.taxonomy_to_string tax

let pp fmt s =
  Format.fprintf fmt
    "@[<v>live validation (%s vs %s on %s): %d confirmed, %d refuted, %d transport-failed \
     (reconnects %d, restarts %d)@ "
    s.ls_agent_a s.ls_agent_b s.ls_test s.ls_confirmed s.ls_refuted s.ls_failed s.ls_reconnects
    s.ls_restarts;
  List.iteri
    (fun i r ->
      Format.fprintf fmt "inconsistency %d: %s" i (status_name r.l_status);
      (match r.l_status with
       | L_failed (_, msg) -> Format.fprintf fmt " (%s)" msg
       | L_confirmed | L_refuted -> ());
      (match (r.l_key_a, r.l_key_b) with
       | Some ka, Some kb -> Format.fprintf fmt "@   live a: %s@   live b: %s" ka kb
       | _ -> ());
      Format.fprintf fmt "@ ")
    s.ls_results;
  Format.fprintf fmt "@]"
