(** Root-cause triage: classify inconsistencies into the behaviour classes
    of the paper's §5.1.2 and deduplicate reports per class (one underlying
    difference usually manifests as many reported inconsistencies — 58
    reports, 6 root causes in the paper's extreme case). *)

type cause_class =
  | Agent_crash  (** one agent terminates with an error *)
  | Missing_error  (** one agent errors, the other stays silent *)
  | Different_errors  (** both error, with different type/code *)
  | Rejected_vs_applied  (** error on one side, observable effect on the other *)
  | Forwarding_difference  (** both act on the packet, differently *)
  | State_difference  (** divergence visible only through probes *)
  | Other

val class_name : cause_class -> string

val classify : Crosscheck.inconsistency -> cause_class

type summary = {
  s_class : cause_class;
  s_count : int;
  s_example : Crosscheck.inconsistency;  (** one representative *)
}

val summarize : Crosscheck.outcome -> summary list
(** One entry per behaviour class present, most frequent first. *)

val exit_status : ?validation:Validate.summary -> Crosscheck.outcome -> int
(** Process exit status for an outcome: [0] clean; [1] inconsistencies
    (replay-confirmed ones when [validation] is given); [3] inconclusive —
    undecided or faulted pairs, or reported inconsistencies that
    validation refuted or failed to replay.  [1] outranks [3]: a
    confirmed divergence fails a scripted gate even if parts of the check
    also gave up.  ([2] is the CLI's usage-error status and is never
    produced here.) *)

val exit_of_counts : inconsistencies:int -> undecided:int -> faults:int -> int
(** The {!exit_status} policy from bare counters, for callers (the service
    daemon) that replay verdict counts from a journal instead of holding a
    {!Crosscheck.outcome}.  [faults] covers pair faults and quarantines. *)

val pp_summary : Format.formatter -> summary list -> unit
