(** The end-to-end SOFT pipeline (the paper's Figure 3): symbolically
    execute each agent on a test, group path conditions by output result,
    and crosscheck the groups through the solver.  The [run]/[group]/[check]
    stages are also exposed individually (via {!Harness.Runner},
    {!Grouping}, {!Crosscheck}) for the decoupled vendor workflow. *)

type comparison = {
  c_test : Harness.Test_spec.t;
  c_run_a : Harness.Runner.run;
  c_run_b : Harness.Runner.run;
  c_grouped_a : Grouping.grouped;
  c_grouped_b : Grouping.grouped;
  c_outcome : Crosscheck.outcome;
  c_validation : Validate.summary option;
      (** replay validation of the found inconsistencies; [Some] only when
          requested via [~validate:true] (and never from {!compare_runs},
          which has no agents to re-execute) *)
}

val compare_runs :
  ?split:int ->
  ?budget:Smt.Solver.budget ->
  ?checkpoint:string ->
  ?resume:string ->
  ?jobs:int ->
  ?incremental:bool ->
  ?prune:bool ->
  ?share:bool ->
  ?exchange:bool ->
  ?supervise:Harness.Supervise.policy ->
  ?on_warning:(string -> unit) ->
  Harness.Test_spec.t ->
  Harness.Runner.run ->
  Harness.Runner.run ->
  comparison
(** Phase 2 only, over existing phase-1 runs.  The optional arguments
    (including [jobs], the crosscheck worker-domain count, [incremental],
    the row-major session solving toggle, [prune], the UNSAT-core row
    pruning toggle, [share]/[exchange], the shared-blasted-base and
    learnt-clause-exchange toggles, and [supervise], the watchdog
    policy) are forwarded to {!Crosscheck.check}. *)

val compare_agents :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  ?deadline_ms:int ->
  ?solver_budget:Smt.Solver.budget ->
  ?split:int ->
  ?jobs:int ->
  ?incremental:bool ->
  ?prune:bool ->
  ?share:bool ->
  ?exchange:bool ->
  ?supervise:Harness.Supervise.policy ->
  ?validate:bool ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t ->
  comparison
(** Both phases in one process.  [deadline_ms] bounds each agent's
    exploration wall clock; [solver_budget] bounds every solver query in
    both phases.  [jobs] (default 1): with more than one job, the two
    agents' phase-1 explorations run concurrently on separate domains
    (each with its own solver context) and the crosscheck runs at
    [jobs] workers; agent A's exception still wins deterministically when
    both fail.  [incremental] is forwarded to {!Crosscheck.check}.
    [validate] (default false) replays every found inconsistency's witness
    through both agents and records the {!Validate.summary}. *)

type suite_result = {
  sr_comparisons : comparison list;  (** tests where both runs completed *)
  sr_failures : Harness.Runner.failure list;
      (** crash-isolated runs that raised; the suite continued without them *)
}

val compare_suite :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  ?deadline_ms:int ->
  ?solver_budget:Smt.Solver.budget ->
  ?split:int ->
  ?jobs:int ->
  ?incremental:bool ->
  ?prune:bool ->
  ?share:bool ->
  ?exchange:bool ->
  ?supervise:Harness.Supervise.policy ->
  ?validate:bool ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t list ->
  suite_result
(** Run a whole suite.  Each agent execution is crash-isolated: one
    crashing or diverging run yields a failure record, not a lost suite.
    [jobs] parallelizes as in {!compare_agents}; when agent A's run fails
    under [jobs > 1], agent B's concurrent result is discarded so the
    recorded failure is the same one a sequential run reports. *)

val test_cases : comparison -> Testcase.t list
(** One concrete reproducer per inconsistency found. *)

val inconsistency_count : comparison -> int
val summaries : comparison -> Report.summary list
val pp_comparison : Format.formatter -> comparison -> unit
val pp_suite : Format.formatter -> suite_result -> unit
