(** Replay-confirmed inconsistencies.

    Every crosscheck inconsistency carries a concrete witness input
    (paper §4.2: a replayable test case).  Validation re-executes both
    agents on that witness with all symbolic inputs pinned and compares
    the concrete normalized traces, so a reported divergence no longer
    rests on trusting the solver, the grouping, or witness extraction:

    - [Confirmed]: the concrete traces differ — the finding stands;
    - [Refuted]: the concrete traces are identical — the report is wrong
      somewhere in the pipeline and must not be presented as a finding;
    - [Replay_failed]: re-execution could not reproduce a claimed path —
      the report is suspect and counts as unvalidated. *)

type status =
  | Confirmed
  | Refuted
  | Replay_failed of string  (** which agent failed to replay, and why *)

type result = {
  v_inc : Crosscheck.inconsistency;
  v_status : status;
  v_replay_a : Openflow.Trace.result option;
      (** agent A's concrete replay trace, when replay reached one *)
  v_replay_b : Openflow.Trace.result option;
}

type summary = {
  vs_agent_a : string;
  vs_agent_b : string;
  vs_test : string;
  vs_confirmed : int;
  vs_refuted : int;
  vs_failed : int;
  vs_results : result list;
}

val status_name : status -> string

val validate_one :
  ?max_paths:int ->
  ?solver_budget:Smt.Solver.budget ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t ->
  Crosscheck.inconsistency ->
  result
(** Replay one inconsistency's witness through both agents
    ({!Harness.Runner.execute_replay}) and compare the concrete traces.
    [Out_of_memory] propagates; any other replay exception becomes
    [Replay_failed]. *)

val validate :
  ?max_paths:int ->
  ?solver_budget:Smt.Solver.budget ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t ->
  Crosscheck.outcome ->
  summary
(** Validate every inconsistency of a crosscheck outcome. *)

val unconfirmed : summary -> int
(** Refuted + replay-failed; nonzero means the inconsistency report
    cannot be fully trusted as-is. *)

val all_confirmed : summary -> bool

val pp_result : Format.formatter -> result -> unit
val pp : Format.formatter -> summary -> unit
