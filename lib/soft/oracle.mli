(** Invariant oracles and workloads for fault-schedule exploration
    ({!Harness.Explore}).

    The generic explore driver lives in the harness layer and knows
    nothing about crosschecks; this module supplies the SOFT-side
    plumbing: an observation type capturing everything the oracles judge,
    the oracles themselves, and named workload builders the CLI, tests
    and CI share.

    The oracles are the system's standing robustness contracts:
    - {b chaos only grows undecided} — no invented inconsistency, no
      verdict lost to anything but the undecided set, same pairs
      compared (the soundness contract of {!Harness.Chaos});
    - {b kill-and-recover byte identity} — a fault-free resume from
      whatever checkpoint survived the faulted run must reproduce the
      clean run's {!Crosscheck.render_stable} bytes exactly;
    - {b exit-code taxonomy} — the outcome's exit status must equal
      {!Report.exit_of_counts} of its own counters;
    - {b bounded wall clock} — the run finishes within its time bound
      instead of hanging. *)

type obs = {
  ob_stable : string;  (** {!Crosscheck.render_stable} of the faulted run *)
  ob_recovered : string;  (** stable render of the fault-free resume leg *)
  ob_incs : (string * string) list;  (** result-key pairs found inconsistent *)
  ob_pairs_checked : int;
  ob_undecided : (string * string) list;
  ob_faults : int;  (** faulted + quarantined pairs *)
  ob_exit : int;  (** {!Report.exit_status} of the faulted run *)
  ob_wall_s : float;  (** wall-clock seconds for the whole observation *)
  ob_signal : string list;
      (** free-form workload-specific signal (synthetic workloads encode
          their fired sites here); empty for crosscheck workloads *)
}

val observe : ?recovered:string -> ?wall_s:float -> Crosscheck.outcome -> obs
(** Project an outcome into an observation.  [recovered] defaults to the
    outcome's own stable render (i.e. "no separate recovery leg"). *)

val oracles : ?max_wall_s:float -> baseline:obs -> obs -> string list
(** The four standing invariants above; [[]] means all hold.
    [max_wall_s] (default 300) bounds [ob_wall_s]. *)

val crosscheck_workload :
  ?max_paths:int ->
  ?jobs:int ->
  ?max_wall_s:float ->
  a:Switches.Agent_intf.t ->
  b:Switches.Agent_intf.t ->
  Harness.Test_spec.t ->
  obs Harness.Explore.workload
(** The canonical exploration workload: crosscheck [a] vs [b] on the
    test.  Phase 1 runs once at construction time ({e outside} any chaos
    plan — construct the workload before installing one); each [w_run]
    then crosschecks the cached groups under the active plan with a
    checkpoint leg, resets the clock skew, and re-runs a fault-free
    resume from the surviving checkpoint for the recovery oracle.
    Draw sites therefore cover the crosscheck phase: per-pair keyed
    solver faults, clock jumps, and checkpoint truncation.
    [max_paths] defaults to {!Harness.Runner.default_max_paths}; [jobs]
    (default 1) is the crosscheck worker count. *)

val synthetic_pair_workload : unit -> obs Harness.Explore.workload
(** A pure-draw workload for exercising the explorer itself (and the
    committed repro corpus): it makes a fixed pattern of keyed
    solver-fault draws and violates its oracle exactly when the sites
    (key 3, index 0) and (key 7, index 0) {e both} fire — the known
    two-site minimum every shrink must converge to.  Runs in
    microseconds; no solver work. *)

val workloads : unit -> string list
(** The names {!workload} resolves: every test id plus
    ["synthetic-pair"]. *)

val workload :
  ?max_paths:int ->
  ?jobs:int ->
  ?max_wall_s:float ->
  a:Switches.Agent_intf.t ->
  b:Switches.Agent_intf.t ->
  string ->
  (obs Harness.Explore.workload, string) result
(** Resolve a workload by name: a test id builds
    {!crosscheck_workload} for [a] vs [b]; ["synthetic-pair"] builds
    {!synthetic_pair_workload}.  [Error] names the valid choices. *)
