(* The end-to-end SOFT pipeline (Figure 3): symbolically execute each agent
   on a test, group path conditions by output result, and crosscheck the
   groups through the solver.  [compare_agents] runs both phases in one
   process; the [run]/[group]/[check] pieces are also exposed separately so
   the CLI can exercise the decoupled vendor workflow of §2.4.

   [compare_suite] is the robust entry point for long runs: each agent
   execution is crash-isolated ({!Harness.Runner.execute_safe}), so one
   diverging or crashing agent run is recorded as a failure and the rest of
   the suite still completes. *)

module Runner = Harness.Runner
module Test_spec = Harness.Test_spec

type comparison = {
  c_test : Test_spec.t;
  c_run_a : Runner.run;
  c_run_b : Runner.run;
  c_grouped_a : Grouping.grouped;
  c_grouped_b : Grouping.grouped;
  c_outcome : Crosscheck.outcome;
  c_validation : Validate.summary option;
  (* present when the caller asked for replay validation; [compare_runs]
     cannot produce it (it has runs, not agents to re-execute) *)
}

let compare_runs ?split ?budget ?checkpoint ?resume ?jobs ?incremental ?prune ?share
    ?exchange ?supervise ?on_warning spec run_a run_b =
  let grouped_a = Grouping.of_run run_a in
  let grouped_b = Grouping.of_run run_b in
  let outcome =
    Crosscheck.check ?split ?budget ?checkpoint ?resume ?jobs ?incremental ?prune ?share
      ?exchange ?supervise ?on_warning grouped_a grouped_b
  in
  {
    c_test = spec;
    c_run_a = run_a;
    c_run_b = run_b;
    c_grouped_a = grouped_a;
    c_grouped_b = grouped_b;
    c_outcome = outcome;
    c_validation = None;
  }

(* Run the two agents' phase-1 executions concurrently on two domains when
   [jobs > 1]; each thunk's outcome comes back as a [result] so agent A's
   failure can win deterministically, exactly as the sequential order
   (A first, B never started after A fails) would have it. *)
let concurrent_pair ~jobs fa fb =
  if jobs <= 1 then None
  else begin
    let worker_init, worker_exit = Crosscheck.solver_pool_hooks () in
    (* the pool's per-task outcomes are exactly the Ok/Error shape wanted
       here: each agent's failure stays its own, delivered in task order *)
    let rs =
      Harness.Pool.run ~worker_init ~worker_exit ~jobs:2 (fun f -> f ()) [| fa; fb |]
    in
    Some (rs.(0), rs.(1))
  end

let reraise_or = function
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let compare_agents ?max_paths ?strategy ?deadline_ms ?solver_budget ?split ?(jobs = 1)
    ?incremental ?prune ?share ?exchange ?supervise ?(validate = false) agent_a agent_b
    (spec : Test_spec.t) =
  let exec agent () =
    Runner.execute ?max_paths ?strategy ?deadline_ms ?solver_budget agent spec
  in
  let run_a, run_b =
    match concurrent_pair ~jobs (exec agent_a) (exec agent_b) with
    | None ->
      let a = exec agent_a () in
      (a, exec agent_b ())
    | Some (ra, rb) ->
      (* A's exception takes precedence over B's, matching sequential order *)
      let a = reraise_or ra in
      (a, reraise_or rb)
  in
  let c =
    compare_runs ?split ?budget:solver_budget ~jobs ?incremental ?prune ?share ?exchange
      ?supervise spec run_a run_b
  in
  if not validate then c
  else
    {
      c with
      c_validation =
        Some (Validate.validate ?solver_budget agent_a agent_b spec c.c_outcome);
    }

(* Run a whole suite of tests between two agents.  Every per-agent run is
   crash-isolated: a run that raises becomes a [Runner.failure] record and
   the remaining tests still execute. *)
type suite_result = {
  sr_comparisons : comparison list;
  sr_failures : Runner.failure list;
}

let compare_suite ?max_paths ?strategy ?deadline_ms ?solver_budget ?split ?(jobs = 1)
    ?incremental ?prune ?share ?exchange ?supervise ?(validate = false) agent_a agent_b
    specs =
  let comparisons = ref [] in
  let failures = ref [] in
  List.iter
    (fun (spec : Test_spec.t) ->
      let safe agent () =
        Runner.execute_safe ?max_paths ?strategy ?deadline_ms ?solver_budget agent spec
      in
      let runs =
        match concurrent_pair ~jobs (safe agent_a) (safe agent_b) with
        | None -> (
          (* sequential: agent B does not even run once A has failed *)
          match safe agent_a () with
          | Error f -> Error f
          | Ok run_a -> (
            match safe agent_b () with Error f -> Error f | Ok run_b -> Ok (run_a, run_b)))
        | Some (ra, rb) -> (
          (* concurrent: B ran regardless, but when A failed its result is
             discarded so the recorded failure matches the sequential one *)
          match reraise_or ra with
          | Error f -> Error f
          | Ok run_a -> (
            match reraise_or rb with Error f -> Error f | Ok run_b -> Ok (run_a, run_b)))
      in
      match runs with
      | Error f -> failures := f :: !failures
      | Ok (run_a, run_b) ->
        let c =
          compare_runs ?split ?budget:solver_budget ~jobs ?incremental ?prune ?share
            ?exchange ?supervise spec run_a run_b
        in
        let c =
          if not validate then c
          else
            {
              c with
              c_validation =
                Some (Validate.validate ?solver_budget agent_a agent_b spec c.c_outcome);
            }
        in
        comparisons := c :: !comparisons)
    specs;
  { sr_comparisons = List.rev !comparisons; sr_failures = List.rev !failures }

(* Concrete reproducers for every inconsistency found in a comparison. *)
let test_cases (c : comparison) =
  List.map
    (Testcase.of_inconsistency c.c_test
       ~agent_a:c.c_outcome.Crosscheck.o_agent_a
       ~agent_b:c.c_outcome.Crosscheck.o_agent_b)
    c.c_outcome.Crosscheck.o_inconsistencies

let inconsistency_count c = Crosscheck.count c.c_outcome

let summaries c = Report.summarize c.c_outcome

let pp_comparison fmt c =
  Format.fprintf fmt "@[<v>== %s: %s vs %s ==@ " c.c_test.Test_spec.label
    c.c_outcome.Crosscheck.o_agent_a c.c_outcome.Crosscheck.o_agent_b;
  Format.fprintf fmt "%s: %d paths, %d result groups (grouping %.3fs)@ "
    c.c_outcome.o_agent_a
    (List.length c.c_run_a.Runner.run_paths)
    (Grouping.distinct_results c.c_grouped_a)
    c.c_grouped_a.Grouping.gr_group_time;
  Format.fprintf fmt "%s: %d paths, %d result groups (grouping %.3fs)@ "
    c.c_outcome.o_agent_b
    (List.length c.c_run_b.Runner.run_paths)
    (Grouping.distinct_results c.c_grouped_b)
    c.c_grouped_b.Grouping.gr_group_time;
  Format.fprintf fmt "inconsistencies: %d (checking %.2fs)@ " (inconsistency_count c)
    c.c_outcome.Crosscheck.o_check_time;
  (match Crosscheck.undecided_count c.c_outcome with
   | 0 -> ()
   | n ->
     Format.fprintf fmt
       "undecided pairs: %d (solver budget exhausted — rerun with a larger budget)@ " n);
  (match c.c_outcome.Crosscheck.o_pair_faults with
   | 0 -> ()
   | n -> Format.fprintf fmt "faulted pairs: %d (degraded to undecided)@ " n);
  (match Crosscheck.quarantined_count c.c_outcome with
   | 0 -> ()
   | n ->
     Format.fprintf fmt
       "quarantined pairs: %d (supervision struck out; a resume skips them)@ " n);
  Report.pp_summary fmt (summaries c);
  (match c.c_validation with
   | None -> ()
   | Some v -> Format.fprintf fmt "%a@ " Validate.pp v);
  Format.fprintf fmt "@]"

let pp_suite fmt s =
  List.iter (fun c -> Format.fprintf fmt "%a@ " pp_comparison c) s.sr_comparisons;
  match s.sr_failures with
  | [] -> ()
  | fs ->
    Format.fprintf fmt "@[<v>failed runs (isolated, rest of the suite completed):@ ";
    List.iter (fun f -> Format.fprintf fmt "  %a@ " Runner.pp_failure f) fs;
    Format.fprintf fmt "@]"
