(* SOFT's inconsistency finder (paper §3.4, §4.2): given two agents'
   grouped results, consider every pair of *different* results, and ask the
   solver whether some common input reaches both — i.e. whether
   C_A(i) ∧ C_B(j) is satisfiable.  Each satisfiable pair is an
   inconsistency, and the solver's model is a concrete witness input.

   The number of solver queries is |RES_A| · |RES_B| minus the equal pairs,
   which grouping has already reduced by orders of magnitude relative to
   raw path counts.

   This stage is the fragile part of SOFT — the paper's own STP blew up on
   the Open vSwitch FlowMod disjunctions (§5.2, Table 3).  Three defences
   live here:
   - per-query solver budgets, so a pathological pair costs bounded time;
   - a chunk-split retry ladder: when the monolithic disjunction pair comes
     back [Unknown], it is re-checked as pairs of ever smaller disjunction
     chunks (the paper's proposed future-work remedy) before the pair is
     finally recorded as *undecided* rather than silently dropped;
   - periodic checkpoints, so a killed multi-hour crosscheck resumes where
     it left off instead of starting over.

   And one amortization: every query of row [i] shares the full conjunct
   C_A(i) with every other query in the row, so by default the solve pass
   is row-major over incremental {!Smt.Session}s — C_A(i) is blasted once
   as hard clauses, each C_B(j) rides on an activation literal, and learnt
   clauses/activities/phases carry across the row.  Reports stay
   byte-identical to scratch mode (see [session.ml]); [~incremental:false]
   restores the per-pair scratch loop. *)

open Smt
module Trace = Openflow.Trace
module Chaos = Harness.Chaos
module Pool = Harness.Pool
module Supervise = Harness.Supervise

type inconsistency = {
  i_result_a : Trace.result;
  i_result_b : Trace.result;
  i_witness : Model.t; (* concrete input values exhibiting the divergence *)
  i_cond : Expr.boolean; (* the satisfiable conjunction *)
  i_paths_a : int;
  i_paths_b : int;
}

type outcome = {
  o_agent_a : string;
  o_agent_b : string;
  o_test : string;
  o_inconsistencies : inconsistency list;
  o_pairs_checked : int;
  o_pairs_equal : int; (* pairs skipped because the results were identical *)
  o_pairs_undecided : (string * string) list;
  (* result-key pairs on which every budgeted attempt, including the full
     retry ladder, came back Unknown — "gave up", not "no inconsistency" *)
  o_pair_faults : int;
  (* pairs lost to a fault (solver soundness error or injected fault)
     rather than an honest Unknown; they are counted in
     [o_pairs_undecided] too, and left out of checkpoints so a resumed
     run retries them *)
  o_pairs_quarantined : (string * string * Supervise.taxonomy) list;
  (* pairs the supervision layer gave up on after the full retry ladder,
     with the last strike's failure taxonomy.  Counted in
     [o_pairs_undecided] too, and — unlike transient faults — persisted
     in the checkpoint, so a resume skips known-poison pairs instead of
     re-dying on them *)
  o_retries : int;
  (* supervised attempts beyond each pair's first, summed over the run *)
  o_check_time : float; (* seconds in the intersection stage (Table 3) *)
}

(* Split a group's disjuncts into chunks of at most [n] path conditions.
   SAT(A ∧ B) iff some chunk pair is satisfiable, so checking chunk pairs
   with an early exit trades more (but much smaller) queries for the one
   monolithic conjunction — the paper's proposed remedy for the solver
   blow-up on CS FlowMods (§5.2, future work). *)
let chunk_conds n conds =
  if n <= 0 then invalid_arg "Crosscheck.chunk_conds: chunk size must be positive";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else Expr.balanced_disj (List.rev cur) :: acc)
    | c :: rest ->
      if k = n then go (Expr.balanced_disj (List.rev cur) :: acc) [ c ] 1 rest
      else go acc (c :: cur) (k + 1) rest
  in
  go [] [] 0 conds

type pair_verdict = Pair_sat of Model.t | Pair_unsat | Pair_undecided

(* Check every chunk pair: any SAT ends the search with a witness; all
   UNSAT proves the pair clean; an Unknown with no SAT anywhere leaves the
   pair undecided. *)
let check_chunks ?budget chunks_a chunks_b =
  let unknown = ref false in
  let rec pairs = function
    | [] -> if !unknown then Pair_undecided else Pair_unsat
    | ca :: rest_a ->
      let rec inner = function
        | [] -> pairs rest_a
        | cb :: rest_b -> (
          match Solver.check ?budget [ ca; cb ] with
          | Solver.Sat witness -> Pair_sat witness
          | Solver.Unsat -> inner rest_b
          | Solver.Unknown _ ->
            unknown := true;
            inner rest_b)
      in
      inner chunks_b
  in
  pairs chunks_a

(* Chunk sizes tried, in order, after a budgeted attempt comes back
   Unknown: split the disjunctions ever finer before giving up. *)
let default_retry_ladder = [ 16; 4; 1 ]

let sat_pair ?split ?budget ?(retry = default_retry_ladder) (ga : Grouping.group)
    (gb : Grouping.group) =
  let members_a = ga.Grouping.g_member_conds and members_b = gb.Grouping.g_member_conds in
  let attempt = function
    | None -> check_chunks ?budget [ ga.Grouping.g_cond ] [ gb.Grouping.g_cond ]
    | Some n -> check_chunks ?budget (chunk_conds n members_a) (chunk_conds n members_b)
  in
  let chunk_count = function
    | None -> 1
    | Some n -> ((List.length members_a + n - 1) / n) + ((List.length members_b + n - 1) / n)
  in
  let rec go current rungs =
    match attempt current with
    | (Pair_sat _ | Pair_unsat) as v -> v
    | Pair_undecided -> (
      (* escalate down the ladder, skipping rungs that would re-issue the
         exact same chunking (e.g. singleton groups) *)
      match rungs with
      | [] -> Pair_undecided
      | n :: rest ->
        let finer =
          n >= 1
          && (match current with None -> true | Some c -> n < c)
          && chunk_count (Some n) > chunk_count current
        in
        if finer then go (Some n) rest else go current rest)
  in
  go split retry

(* --- checkpointing --------------------------------------------------- *)

exception Checkpoint_error of string

(* What a finished pair contributed, keyed by (index_a, index_b); this is
   both the in-memory resume state and the on-disk record. *)
type pair_outcome =
  | P_clean
  | P_undecided
  | P_inc of (Expr.var * int64) list (* witness bindings *)
  | P_quarantined of Supervise.taxonomy
      (* supervision exhausted the retry ladder on this pair; a resume
         skips it instead of re-dying on it *)

(* The checkpoint ties itself to the exact grouped inputs via a digest of
   the group keys, so resuming against different runs is refused instead of
   silently producing garbage. *)
let fingerprint (ka : string array) (kb : string array) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (Array.to_list ka) ^ "\x01" ^ String.concat "\x00" (Array.to_list kb)))

let write_checkpoint path ~test ~agent_a ~agent_b ~fp (decided : (int * int, pair_outcome) Hashtbl.t) =
  (* the snapshot is built in memory so a whole-file checksum can be
     appended: the trailing [sum <md5>] line covers every preceding byte,
     letting the reader detect truncation and bit flips — not just the
     malformed lines the parser happens to notice *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "soft-checkpoint 3\n";
  Printf.bprintf buf "test %s\n" test;
  Printf.bprintf buf "agent-a %s\n" agent_a;
  Printf.bprintf buf "agent-b %s\n" agent_b;
  Printf.bprintf buf "fingerprint %s\n" fp;
  (* records are emitted sorted by (i, j), not in hash order: the file for
     a given decided-set is then one exact byte string — identical across
     [-j N], across write/read/rewrite round trips, and across resumes *)
  let records =
    List.sort compare (Hashtbl.fold (fun ij o acc -> (ij, o) :: acc) decided [])
  in
  List.iter
    (fun ((i, j), outcome) ->
      match outcome with
      | P_clean -> Printf.bprintf buf "d %d %d\n" i j
      | P_undecided -> Printf.bprintf buf "u %d %d\n" i j
      | P_quarantined tax ->
        Printf.bprintf buf "q %d %d %s\n" i j (Supervise.taxonomy_to_string tax)
      | P_inc bindings ->
        Printf.bprintf buf "i %d %d\n" i j;
        List.iter
          (fun (v, value) ->
            Printf.bprintf buf "w %d %Lx |%s|\n" (Expr.var_width v) value (Expr.var_name v))
          bindings)
    records;
  let body = Buffer.contents buf in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc body;
      Printf.fprintf oc "sum %s\n" (Digest.to_hex (Digest.string body)));
  (* atomic replace: a kill mid-write never corrupts the previous snapshot *)
  Sys.rename tmp path;
  (* fault injection may cut the freshly written file down mid-file; the
     checksum above is what turns that into a detected cold start *)
  Chaos.maybe_truncate_file path

(* Split off and verify the trailing [sum <md5>] line.  [None] means the
   snapshot cannot be trusted (truncated, bit-flipped, or pre-checksum
   format); [Some body] is the verified payload. *)
let verified_body content =
  let len = String.length content in
  if len = 0 || content.[len - 1] <> '\n' then None
  else
    let wo_nl = String.sub content 0 (len - 1) in
    match String.rindex_opt wo_nl '\n' with
    | None -> None
    | Some i ->
      let last = String.sub wo_nl (i + 1) (String.length wo_nl - i - 1) in
      if String.length last > 4 && String.sub last 0 4 = "sum " then begin
        let body = String.sub content 0 (i + 1) in
        let sum = String.sub last 4 (String.length last - 4) in
        if String.lowercase_ascii sum = Digest.to_hex (Digest.string body) then Some body
        else None
      end
      else None

let read_checkpoint path ~test ~agent_a ~agent_b ~fp ~on_warning =
  let decided : (int * int, pair_outcome) Hashtbl.t = Hashtbl.create 256 in
  if not (Sys.file_exists path) then decided (* fresh start *)
  else begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    match verified_body content with
    | None ->
      (* a corrupt snapshot degrades to a cold start: slower, never wrong.
         Only an *intact* file that belongs to different runs is an error
         (below) — that one the caller must not silently ignore. *)
      on_warning
        (Printf.sprintf
           "checkpoint %s failed its integrity check (truncated or corrupted); starting cold"
           path);
      decided
    | Some body ->
        let fail msg = raise (Checkpoint_error (path ^ ": " ^ msg)) in
        let lines = ref (String.split_on_char '\n' body) in
        let line () =
          match !lines with
          | [] | [ "" ] -> None
          | l :: rest ->
            lines := rest;
            Some l
        in
        let expect_kv key expected =
          match line () with
          | Some l when l = key ^ " " ^ expected -> ()
          | Some l -> fail (Printf.sprintf "expected '%s %s', got '%s'" key expected l)
          | None -> fail "truncated header"
        in
        (* v2 is read transparently: same body grammar minus quarantine
           lines, so a v2 resume simply starts with an empty quarantine.
           The next snapshot is written as v3. *)
        (match line () with
         | Some "soft-checkpoint 2" | Some "soft-checkpoint 3" -> ()
         | _ -> fail "bad magic");
        expect_kv "test" test;
        expect_kv "agent-a" agent_a;
        expect_kv "agent-b" agent_b;
        expect_kv "fingerprint" fp;
        let parse_ij l =
          match String.split_on_char ' ' l with
          | [ _; i; j ] -> (
            match (int_of_string_opt i, int_of_string_opt j) with
            | Some i, Some j -> (i, j)
            | _ -> fail ("bad pair indices: " ^ l))
          | _ -> fail ("bad pair line: " ^ l)
        in
        let parse_w l =
          (* w WIDTH HEX |name| — the name is last and |-quoted, so it may
             contain spaces *)
          match String.index_opt l '|' with
          | None -> fail ("bad witness line: " ^ l)
          | Some bar ->
            if String.length l < bar + 2 || l.[String.length l - 1] <> '|' then
              fail ("bad witness name: " ^ l);
            let name = String.sub l (bar + 1) (String.length l - bar - 2) in
            let head = String.trim (String.sub l 0 bar) in
            (match String.split_on_char ' ' head with
             | [ _; w; hex ] -> (
               match
                 (int_of_string_opt w, Int64.of_string_opt ("0x" ^ hex))
               with
               | Some w, Some value -> (Expr.make_var name w, value)
               | _ -> fail ("bad witness binding: " ^ l))
             | _ -> fail ("bad witness line: " ^ l))
        in
        (* Record a pair outcome, policing quarantine collisions.  A
           well-formed snapshot mentions each pair at most once; writers
           that crash between retry attempts have however produced files
           with a duplicate — or worse, contradictory — [q] record for the
           same pair.  Taking the last silently would let a later record
           overwrite a real verdict with a quarantine (or vice versa), so
           any collision involving a quarantine keeps the FIRST record and
           warns.  First-wins matches the append order of the writer: the
           earliest record reflects the state actually reached. *)
        let record ij outcome =
          match Hashtbl.find_opt decided ij with
          | None -> Hashtbl.replace decided ij outcome
          | Some prev ->
            let involves_quarantine =
              match (prev, outcome) with
              | P_quarantined _, _ | _, P_quarantined _ -> true
              | _ -> false
            in
            if involves_quarantine then
              on_warning
                (Printf.sprintf
                   "checkpoint %s: %s record for pair (%d,%d); keeping the first"
                   path
                   (match (prev, outcome) with
                    | P_quarantined a, P_quarantined b when a = b ->
                      "duplicate quarantine"
                    | _ -> "contradictory quarantine")
                   (fst ij) (snd ij))
            else Hashtbl.replace decided ij outcome
        in
        let cur_inc = ref None in
        let flush () =
          match !cur_inc with
          | Some (ij, bindings) ->
            record ij (P_inc (List.rev bindings));
            cur_inc := None
          | None -> ()
        in
        let rec go () =
          match line () with
          | None -> flush ()
          | Some "" -> go ()
          | Some l when String.length l >= 2 && l.[0] = 'd' && l.[1] = ' ' ->
            flush ();
            record (parse_ij l) P_clean;
            go ()
          | Some l when String.length l >= 2 && l.[0] = 'u' && l.[1] = ' ' ->
            flush ();
            record (parse_ij l) P_undecided;
            go ()
          | Some l when String.length l >= 2 && l.[0] = 'q' && l.[1] = ' ' ->
            flush ();
            (match String.split_on_char ' ' l with
             | [ _; i; j; tax ] -> (
               match
                 ( int_of_string_opt i,
                   int_of_string_opt j,
                   Supervise.taxonomy_of_string tax )
               with
               | Some i, Some j, Some tax -> record (i, j) (P_quarantined tax)
               | _ -> fail ("bad quarantine line: " ^ l))
             | _ -> fail ("bad quarantine line: " ^ l));
            go ()
          | Some l when String.length l >= 2 && l.[0] = 'i' && l.[1] = ' ' ->
            flush ();
            cur_inc := Some (parse_ij l, []);
            go ()
          | Some l when String.length l >= 2 && l.[0] = 'w' && l.[1] = ' ' -> (
            match !cur_inc with
            | None -> fail ("witness line outside an inconsistency: " ^ l)
            | Some (ij, bindings) ->
              cur_inc := Some (ij, parse_w l :: bindings);
              go ())
          | Some l -> fail ("unexpected line: " ^ l)
        in
        go ();
        decided
  end

(* --- the crosscheck loop --------------------------------------------- *)

let default_warning msg = Printf.eprintf "soft: warning: %s\n%!" msg

(* What one pair's solve attempt chain ultimately produced.  [F_fault] is
   the unsupervised transient degradation (not checkpointed; a resume
   retries the pair); [F_quarantine] is supervision's terminal strike-out
   (checkpointed; a resume skips the pair). *)
type pair_fate =
  | F_ok of pair_verdict
  | F_fault
  | F_quarantine of Supervise.taxonomy * string

(* Hooks carrying the caller's solver context across a {!Pool.run}: each
   fresh worker domain starts with a default [Solver] context, so
   [worker_init] replays the caller's config (budget, certify regime,
   cache capacity) into it, and [worker_exit] folds the worker's counters
   back into the caller's stats record.  Workers may exit concurrently,
   hence the merge lock. *)
let solver_pool_hooks () =
  let cfg = Solver.snapshot_config () in
  let caller_stats = Solver.stats () in
  let merge_lock = Mutex.create () in
  let worker_init () = Solver.apply_config cfg in
  let worker_exit () =
    (* snapshot the global hash-cons gauge before folding: merge takes the
       max, so the caller's record ends up with the largest table size any
       worker observed — interning growth stays visible at any [-j N] *)
    Solver.capture_expr_stats ();
    let mine = Solver.stats () in
    Mutex.protect merge_lock (fun () -> Solver.merge_stats ~into:caller_stats mine)
  in
  (worker_init, worker_exit)

(* Bounds the cross-domain learnt-clause ring (see {!Smt.Exchange}): big
   enough that a worker's restart-to-restart window rarely overwrites
   unread glue clauses, small enough that a drain stays trivial. *)
let exchange_capacity = 256

let check ?split ?budget ?retry ?checkpoint ?(checkpoint_every = 64) ?resume ?(jobs = 1)
    ?(incremental = true) ?(prune = true) ?(share = true) ?(exchange = true)
    ?(force_pool = false) ?supervise
    ?(on_found = fun (_ : inconsistency) -> ())
    ?(on_warning = default_warning) (a : Grouping.grouped) (b : Grouping.grouped) =
  if a.Grouping.gr_test <> b.Grouping.gr_test then
    invalid_arg "Crosscheck.check: runs of different tests";
  if jobs < 1 then invalid_arg "Crosscheck.check: jobs must be positive";
  let t0 = Mono.now () in
  let groups_a = Array.of_list a.Grouping.gr_groups in
  let groups_b = Array.of_list b.Grouping.gr_groups in
  let keys_a = Array.map (fun (g : Grouping.group) -> g.Grouping.g_key) groups_a in
  let keys_b = Array.map (fun (g : Grouping.group) -> g.Grouping.g_key) groups_b in
  let fp = fingerprint keys_a keys_b in
  let decided =
    match resume with
    | Some path ->
      read_checkpoint path ~test:a.Grouping.gr_test ~agent_a:a.Grouping.gr_agent
        ~agent_b:b.Grouping.gr_agent ~fp ~on_warning
    | None -> Hashtbl.create 256
  in
  let since_snapshot = ref 0 in
  let snapshot () =
    match checkpoint with
    | None -> ()
    | Some path ->
      write_checkpoint path ~test:a.Grouping.gr_test ~agent_a:a.Grouping.gr_agent
        ~agent_b:b.Grouping.gr_agent ~fp decided
  in
  let pairs_checked = ref 0 in
  let pairs_equal = ref 0 in
  let pair_faults = ref 0 in
  let faulted : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mk_inc (ga : Grouping.group) (gb : Grouping.group) witness =
    {
      i_result_a = ga.Grouping.g_result;
      i_result_b = gb.Grouping.g_result;
      i_witness = witness;
      i_cond = Expr.and_ ga.Grouping.g_cond gb.Grouping.g_cond;
      i_paths_a = ga.Grouping.g_path_count;
      i_paths_b = gb.Grouping.g_path_count;
    }
  in
  (* Pass 1 — classify, row-major, on the caller's domain: count equal
     pairs, and collect the pairs the resume snapshot has not already
     decided.  Row-major collection fixes the work order, which under
     [-j 1] makes execution identical to the old sequential loop. *)
  let fresh = ref [] in
  Array.iteri
    (fun i (ga : Grouping.group) ->
      Array.iteri
        (fun j (gb : Grouping.group) ->
          if ga.Grouping.g_key = gb.Grouping.g_key then incr pairs_equal
          else begin
            incr pairs_checked;
            if not (Hashtbl.mem decided (i, j)) then fresh := (i, j) :: !fresh
          end)
        groups_b)
    groups_a;
  let fresh = Array.of_list (List.rev !fresh) in
  (* Pass 2 — solve the fresh pairs, possibly across domains.  The solve
     itself is pure per pair (the solver is deterministic and each worker
     has its own context), so [-j N] changes only scheduling.  All shared
     mutation — [decided], [faulted], counters, [on_found], checkpoint
     writes — happens in [record_pair], which {!Pool.run} runs serialized
     on this domain (via [on_result]): the single checkpoint writer
     survives parallelism. *)
  let retries_total = ref 0 in
  let record_pair (i, j) (fate, retries) =
    retries_total := !retries_total + retries;
    (match fate with
     | F_fault ->
       (* degraded to undecided, and *not* checkpointed: a resumed run
          retries the pair — the fault was transient, an Unknown was
          earned *)
       incr pair_faults;
       Hashtbl.replace faulted (i, j) ()
     | F_quarantine (tax, msg) ->
       on_warning
         (Printf.sprintf "pair (%s, %s) quarantined [%s] after %d retr%s: %s"
            groups_a.(i).Grouping.g_key
            groups_b.(j).Grouping.g_key
            (Supervise.taxonomy_to_string tax)
            retries
            (if retries = 1 then "y" else "ies")
            msg);
       Hashtbl.replace decided (i, j) (P_quarantined tax)
     | F_ok Pair_unsat -> Hashtbl.replace decided (i, j) P_clean
     | F_ok Pair_undecided -> Hashtbl.replace decided (i, j) P_undecided
     | F_ok (Pair_sat witness) ->
       Hashtbl.replace decided (i, j) (P_inc (Model.bindings witness));
       (* under [-j N], [on_found] fires in completion order; the outcome's
          inconsistency list below is ordered deterministically anyway *)
       on_found (mk_inc groups_a.(i) groups_b.(j) witness));
    incr since_snapshot;
    if !since_snapshot >= checkpoint_every then begin
      since_snapshot := 0;
      snapshot ()
    end
  in
  (* fault injection delivers solver faults and clock jumps only inside a
     per-pair scope, keyed by the pair's matrix index so the fault
     pattern is the same at every [-j]; a fault (injected or a genuine
     solver soundness error) costs the pair its verdict, never the run
     or a wrong answer *)
  let guard_pair ?key f = try Some (Chaos.with_solver_faults ?key f) with
    | Solver.Solver_error _ | Chaos.Injected_fault _ -> None
  in
  (* regroup an ascending row-major pair array into its rows, preserving
     order: the unit both passes 1.5 and 2 schedule by *)
  let rows_of pairs =
    let acc = ref [] in
    Array.iter
      (fun (i, j) ->
        match !acc with
        | (i', js) :: rest when i' = i -> acc := (i', j :: js) :: rest
        | _ -> acc := (i, [ j ]) :: !acc)
      pairs;
    Array.of_list (List.rev_map (fun (i, js) -> (i, List.rev js)) !acc)
  in
  (* Pass 1.5 — UNSAT-core row pruning, serial, on the caller's domain,
     and deliberately identical in incremental and scratch modes (it runs
     before either, so the two modes' downstream query streams — and
     their fault-injection draws — stay aligned).  Before solving row [i]
     pairwise, one probe decides [C_A(i) ∧ common(B)] where [common(B)]
     is the disjunction of *all* of B's group conditions: every C_B(j)
     implies it, so an Unsat probe proves every pair of the row disjoint
     at the cost of one query.  The probes share one incremental session
     whose base is [common(B)] (blasted once); the assumption solve's
     failed core attributes each pruning — an empty core means common(B)
     is self-contradictory and every remaining row prunes for free.
     Structural subsumption (see {!Grouping.subsumes}) reuses an
     already-pruned row's verdict when this row's condition implies it,
     without any probe.  On matrices whose sides overlap everywhere no
     row can prune, so probing stops after a few consecutive failures
     — a deterministic cutoff, independent of [jobs].  Certify mode
     disables the pass: its probes would open sessions whose Unsats
     carry no replayable proof.

     The probes run *outside* the fault-injection scope: a probe is an
     extra query a [--no-prune] run never issues, so letting it draw
     from the chaos streams would shift every later pair's fault
     schedule and break the byte-identity gate.  A probe that dies on a
     genuine solver error just counts as a miss.  Note the flip side:
     when a row *does* prune, the skipped pairs' own solves — and any
     faults those solves would have drawn — disappear with them, so on
     matrices that actually prune, a chaos run faults on different pairs
     than its [--no-prune] twin.  That is inherent to skipping work, not
     a cache-layer artefact. *)
  let prune_enabled =
    prune
    && (not (Solver.certify_enabled ()))
    && Array.length fresh > 0
    && Array.length groups_b > 0
  in
  if prune_enabled then begin
    let rows = rows_of fresh in
    let common =
      Expr.balanced_disj
        (Array.to_list (Array.map (fun (g : Grouping.group) -> g.Grouping.g_cond) groups_b))
    in
    let edges = Grouping.subsumption_edges groups_a in
    let pruned : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let st = Solver.stats () in
    let prune_row ~subsumed i js =
      Hashtbl.replace pruned i ();
      st.Solver.rows_pruned <- st.Solver.rows_pruned + 1;
      if subsumed then st.Solver.subsumed_groups <- st.Solver.subsumed_groups + 1;
      st.Solver.pairs_skipped_by_pruning <-
        st.Solver.pairs_skipped_by_pruning + List.length js;
      List.iter (fun j -> record_pair (i, j) (F_ok Pair_unsat, 0)) js
    in
    let session = ref None in
    let base_refuted = ref false in
    let misses = ref 0 in
    (* a probe against the full common(B) disjunction costs about a
       row's worth of pairwise solving, so an overlapping-everywhere
       matrix must stop probing almost immediately *)
    let max_probe_misses = 2 in
    Array.iter
      (fun (i, js) ->
        let ga = groups_a.(i) in
        if !base_refuted then prune_row ~subsumed:false i js
        else if List.exists (fun i' -> Hashtbl.mem pruned i') edges.(i) then
          prune_row ~subsumed:true i js
        else if List.length js >= 2 && !misses < max_probe_misses then begin
          let s =
            match !session with
            | Some s -> s
            | None ->
              let s = Session.create [ common ] in
              session := Some s;
              s
          in
          match
            (* no [guard_pair]: the probe must not draw from the chaos
               streams (see the pass comment above) *)
            (try
               Some (Session.check_attributed ?budget s [ common; ga.Grouping.g_cond ])
             with Solver.Solver_error _ -> None)
          with
          | Some (Solver.Unsat, attr) ->
            misses := 0;
            if attr = Some Session.Base_refuted then base_refuted := true;
            prune_row ~subsumed:false i js
          | Some ((Solver.Sat _ | Solver.Unknown _), _) | None -> incr misses
        end)
      rows
  end;
  let work =
    Array.of_list
      (List.filter
         (fun ij -> not (Hashtbl.mem decided ij))
         (Array.to_list fresh))
  in
  let pair_key (i, j) = (i * Array.length groups_b) + j in
  let worker_init, worker_exit = solver_pool_hooks () in
  (* The incremental path covers the default monolithic-first-attempt
     shape.  An explicit [?split] chunks queries from the start (no shared
     row conjunct to amortize), and certify mode would make every session
     query fall back to scratch anyway (see {!Smt.Session.check}) — both
     use the plain per-pair path. *)
  let use_incremental = incremental && split = None && not (Solver.certify_enabled ()) in
  (* The shared-blasted-base path additionally requires an unlimited
     budget.  A budgeted query's Unknown depends on the solver state it
     runs against, and an adopted copy's state depends on everything its
     domain solved before — schedule-dependent at [-j N].  Unbudgeted
     verdicts are semantic (only Sat/Unsat can come back), so sharing —
     and the learnt-clause exchange riding on it — can change solve
     times but never report bytes.  Budgeted runs keep the per-row
     session path, whose instances live and die inside one row task.
     The shared path runs at [-j 1] too, so every jobs count takes the
     same code path (byte-identity is a diff, not an argument). *)
  let effective_budget =
    match budget with Some b -> b | None -> Solver.get_default_budget ()
  in
  let use_shared = share && use_incremental && Solver.is_unlimited effective_budget in
  (* Pass 2 proper, parameterized by the supervision handle.  Without one
     ([sup = None]) every solve is byte-for-byte the unsupervised code
     path; with one, each pair attempt runs under a watchdog token and the
     retry/backoff/quarantine ladder.  Pool tasks never fail fast either
     way: a task that dies outside any supervised attempt costs its own
     pairs (quarantined under supervision, transiently faulted without),
     never the run. *)
  let run_pass2 sup =
    let record_task_crash pairs e =
      let tax, msg = Supervise.classify_exn e in
      on_warning
        (Printf.sprintf "worker task died (%s): %s"
           (Supervise.taxonomy_to_string tax) msg);
      List.iter
        (fun ij ->
          match sup with
          | Some _ -> record_pair ij (F_quarantine (tax, msg), 0)
          | None -> record_pair ij (F_fault, 0))
        pairs
    in
    (* Pass 2 is row-granular in every mode: one pool task per row [i] of
       the pair matrix — never per pair — so dispatch/steal traffic
       scales with rows, row-internal solver locality survives
       scheduling, and at [-j 1] the sequence of solves and records is
       exactly the old per-pair loop's (rows and the js inside each stay
       ascending).  Which back end a row's pairs use:
       - shared:  assumption solves on an adopted copy of the one shared
                  blasted base (the default unbudgeted path, see
                  [use_shared]);
       - session: a per-row {!Smt.Session} with C_A(i) as its base
                  (budgeted or [~share:false] incremental runs);
       - scratch: per-pair scratch solves ([~incremental:false] or
                  [?split]). *)
    let rows = rows_of work in
    let shared =
      if not (use_shared && Array.length rows > 0) then None
      else begin
        (* blast every group condition of both sides once, here on the
           caller's domain; workers adopt copies instead of re-blasting
           row bases.  The exchange ring only exists when there is more
           than one domain to exchange with. *)
        let ring =
          if jobs > 1 && exchange then
            Some (Exchange.create ~capacity:exchange_capacity)
          else None
        in
        let cond_of (g : Grouping.group) = g.Grouping.g_cond in
        Some
          (Session.make_shared ?ring
             (Array.to_list (Array.map cond_of groups_a)
             @ Array.to_list (Array.map cond_of groups_b)))
      end
    in
    (* A per-row session only pays off once its bit-blasted C_A(i) prefix
       is reused.  What the session saves is re-blasting the base for
       each of the remaining [n-1] pairs — proportional to
       [(n-1) · |C_A(i)|] expression nodes.  What it costs is its setup
       plus, for every Sat pair, the scratch confirm solve (the witness
       must match scratch mode byte for byte), so narrow rows never
       recoup the overhead.  Measured on the bench suite: cs_flow_mods
       rows peak at (6−1)·286 ≈ 1.4k node-pairs and lose ~20% in
       sessions (Sat-heavy, confirm-dominated), short_symb rows around
       2.4k node-pairs still lose ~40%, and eth_flow_mod rows at
       48·165 ≈ 8k node-pairs and up win 3×.  The old fixed [n < 3]
       cutoff — and the first node-count form at 96 — both kept the
       losing rows incremental; the measured break-even sits between
       2.4k and 8k, so the cutoff is set at 3k.  (The shared path has no
       per-row blast to amortize, so it needs no such cutoff.) *)
    let session_overhead_nodes = 3000 in
    let solve_row (i, js) =
      let ga = groups_a.(i) in
      match shared with
      | Some sh ->
        let in_shared j =
          let gb = groups_b.(j) in
          match
            Session.check_shared ?budget sh [ ga.Grouping.g_cond; gb.Grouping.g_cond ]
          with
          | Solver.Sat witness -> Pair_sat witness
          | Solver.Unsat -> Pair_unsat
          | Solver.Unknown _ ->
            (* unreachable under the unlimited budget [use_shared]
               demands, but degrade exactly like the session path *)
            let st = Solver.stats () in
            st.Solver.scratch_fallbacks <- st.Solver.scratch_fallbacks + 1;
            sat_pair ?budget ?retry ga gb
        in
        List.map
          (fun j ->
            match sup with
            | None ->
              let fate =
                match guard_pair ~key:(pair_key (i, j)) (fun () -> in_shared j) with
                | Some v -> F_ok v
                | None -> F_fault
              in
              ((i, j), (fate, 0))
            | Some sup -> (
              let solve_attempt ~attempt =
                Chaos.with_solver_faults ~key:(pair_key (i, j)) (fun () ->
                    (* retries leave the adopted instance (its trail is
                       unwound at the next solve's entry) and rerun from
                       scratch, like the session path's retries *)
                    if attempt = 0 then in_shared j
                    else sat_pair ?budget ?retry ga groups_b.(j))
              in
              match Supervise.run_retrying sup ~key:(pair_key (i, j)) solve_attempt with
              | `Done (v, retries) -> ((i, j), (F_ok v, retries))
              | `Quarantine (tax, msg, retries) ->
                ((i, j), (F_quarantine (tax, msg), retries))))
          js
      | None when use_incremental ->
        let tiny =
          (List.length js - 1) * Expr.bool_size ga.Grouping.g_cond
          < session_overhead_nodes
        in
        if tiny then begin
          let st = Solver.stats () in
          st.Solver.tiny_session_fallbacks <- st.Solver.tiny_session_fallbacks + 1
        end;
        let in_session session j =
          let gb = groups_b.(j) in
          match Session.check ?budget session [ ga.Grouping.g_cond; gb.Grouping.g_cond ] with
          | Solver.Sat witness -> Pair_sat witness
          | Solver.Unsat -> Pair_unsat
          | Solver.Unknown _ ->
            (* budget bit inside the session: retry the pair from
               scratch, down the whole chunk-split ladder *)
            let st = Solver.stats () in
            st.Solver.scratch_fallbacks <- st.Solver.scratch_fallbacks + 1;
            sat_pair ?budget ?retry ga gb
        in
        (match sup with
        | None ->
          let solve_one =
            if tiny then fun j -> sat_pair ?budget ?retry ga groups_b.(j)
            else begin
              let session = Session.create [ ga.Grouping.g_cond ] in
              fun j -> in_session session j
            end
          in
          List.map
            (fun j ->
              let fate =
                match guard_pair ~key:(pair_key (i, j)) (fun () -> solve_one j) with
                | Some v -> F_ok v
                | None -> F_fault
              in
              ((i, j), (fate, 0)))
            js
        | Some sup ->
          (* the row's base blast gets its own supervised attempt: if the
             watchdog kills it, the whole row falls back to per-pair
             scratch attempts instead of dying *)
          let session =
            if tiny then None
            else
              match Supervise.run sup (fun () -> Session.create [ ga.Grouping.g_cond ]) with
              | Ok s -> Some s
              | Error _ -> None
          in
          List.map
            (fun j ->
              let gb = groups_b.(j) in
              let solve_attempt ~attempt =
                Chaos.with_solver_faults ~key:(pair_key (i, j)) (fun () ->
                    match session with
                    | Some s when attempt = 0 -> in_session s j
                    | _ ->
                      (* retries abandon the session: a killed in-session
                         attempt may have left half-blasted (inactive,
                         harmless) clauses behind, and a scratch rerun
                         isolates the retry from them entirely *)
                      sat_pair ?budget ?retry ga gb)
              in
              match Supervise.run_retrying sup ~key:(pair_key (i, j)) solve_attempt with
              | `Done (v, retries) -> ((i, j), (F_ok v, retries))
              | `Quarantine (tax, msg, retries) ->
                ((i, j), (F_quarantine (tax, msg), retries)))
            js)
      | None ->
        List.map
          (fun j ->
            let gb = groups_b.(j) in
            match sup with
            | None ->
              let fate =
                match
                  guard_pair ~key:(pair_key (i, j)) (fun () ->
                      sat_pair ?split ?budget ?retry ga gb)
                with
                | Some v -> F_ok v
                | None -> F_fault
              in
              ((i, j), (fate, 0))
            | Some sup -> (
              match
                Supervise.run_retrying sup ~key:(pair_key (i, j)) (fun ~attempt:_ ->
                    Chaos.with_solver_faults ~key:(pair_key (i, j)) (fun () ->
                        sat_pair ?split ?budget ?retry ga gb))
              with
              | `Done (v, retries) -> ((i, j), (F_ok v, retries))
              | `Quarantine (tax, msg, retries) ->
                ((i, j), (F_quarantine (tax, msg), retries))))
          js
    in
    ignore
      (Pool.run ~worker_init ~worker_exit ~force_pool
         ~on_result:(fun k -> function
           | Ok row -> List.iter (fun (ij, fr) -> record_pair ij fr) row
           | Error (e, _) ->
             let i, js = rows.(k) in
             record_task_crash (List.map (fun j -> (i, j)) js) e)
         ~jobs solve_row rows);
    (* worker domains die with their adopted copies; the caller's domain
       (which runs the tasks itself at [-j 1]) must drop its own copy or
       it would accumulate one per crosscheck for the process lifetime *)
    match shared with Some sh -> Session.release sh | None -> ()
  in
  (match supervise with
   | None -> run_pass2 None
   | Some pol -> Supervise.with_monitor pol (fun sup -> run_pass2 (Some sup)));
  (* Pass 3 — emit, row-major again: the reported lists depend only on the
     per-pair verdicts, never on completion order, so the report is
     identical whatever [jobs] was. *)
  let found = ref [] in
  let undecided = ref [] in
  let quarantined = ref [] in
  Array.iteri
    (fun i (ga : Grouping.group) ->
      Array.iteri
        (fun j (gb : Grouping.group) ->
          if ga.Grouping.g_key <> gb.Grouping.g_key then
            if Hashtbl.mem faulted (i, j) then
              undecided := (ga.Grouping.g_key, gb.Grouping.g_key) :: !undecided
            else
              match Hashtbl.find_opt decided (i, j) with
              | Some P_clean -> ()
              | Some P_undecided ->
                undecided := (ga.Grouping.g_key, gb.Grouping.g_key) :: !undecided
              | Some (P_quarantined tax) ->
                undecided := (ga.Grouping.g_key, gb.Grouping.g_key) :: !undecided;
                quarantined := (ga.Grouping.g_key, gb.Grouping.g_key, tax) :: !quarantined
              | Some (P_inc bindings) ->
                found := mk_inc ga gb (Model.of_bindings bindings) :: !found
              | None -> assert false)
        groups_b)
    groups_a;
  snapshot ();
  {
    o_agent_a = a.Grouping.gr_agent;
    o_agent_b = b.Grouping.gr_agent;
    o_test = a.Grouping.gr_test;
    o_inconsistencies = List.rev !found;
    o_pairs_checked = !pairs_checked;
    o_pairs_equal = !pairs_equal;
    o_pairs_undecided = List.rev !undecided;
    o_pair_faults = !pair_faults;
    o_pairs_quarantined = List.rev !quarantined;
    o_retries = !retries_total;
    o_check_time = Mono.elapsed t0;
  }

let count o = List.length o.o_inconsistencies

let undecided_count o = List.length o.o_pairs_undecided

let quarantined_count o = List.length o.o_pairs_quarantined

(* [pp] and [pp_stable] share everything but the header's trailing check
   time: the stable form is what the service persists and byte-compares
   across crash/recovery, so it must not carry wall-clock noise. *)
let pp_gen ~with_time fmt o =
  Format.fprintf fmt "@[<v>%s vs %s on %s: %d inconsistencies (%d pairs checked, %d undecided%s%s%s)@ "
    o.o_agent_a o.o_agent_b o.o_test (count o) o.o_pairs_checked (undecided_count o)
    (if o.o_pair_faults > 0 then Printf.sprintf " of which %d faulted" o.o_pair_faults else "")
    (if o.o_pairs_quarantined <> [] then
       Printf.sprintf " of which %d quarantined" (quarantined_count o)
     else "")
    (if with_time then Printf.sprintf ", %.2fs" o.o_check_time else "");
  List.iteri
    (fun i inc ->
      Format.fprintf fmt "--- inconsistency %d ---@ %s:@   %s@ %s:@   %s@ witness:@   %s@ " i
        o.o_agent_a
        (Trace.result_key inc.i_result_a)
        o.o_agent_b
        (Trace.result_key inc.i_result_b)
        (String.concat "; "
           (List.map
              (fun (v, value) -> Printf.sprintf "%s=0x%Lx" (Expr.var_name v) value)
              (Model.bindings inc.i_witness))))
    o.o_inconsistencies;
  (* quarantined pairs are in [o_pairs_undecided] too; list them only in
     their own, taxonomy-tagged section *)
  let qkeys = List.map (fun (ka, kb, _) -> (ka, kb)) o.o_pairs_quarantined in
  List.iteri
    (fun i (ka, kb) ->
      Format.fprintf fmt "--- undecided %d (budget exhausted) ---@ %s:@   %s@ %s:@   %s@ " i
        o.o_agent_a ka o.o_agent_b kb)
    (List.filter (fun p -> not (List.mem p qkeys)) o.o_pairs_undecided);
  List.iteri
    (fun i (ka, kb, tax) ->
      Format.fprintf fmt "--- quarantined %d (%s) ---@ %s:@   %s@ %s:@   %s@ " i
        (Supervise.taxonomy_to_string tax) o.o_agent_a ka o.o_agent_b kb)
    o.o_pairs_quarantined;
  Format.fprintf fmt "@]"

let pp = pp_gen ~with_time:true
let pp_stable = pp_gen ~with_time:false
let render_stable o = Format.asprintf "%a" pp_stable o
