(** Live-wire replay: validate crosscheck verdicts against a real switch
    process over OpenFlow 1.0 transport.

    In-process validation ({!Validate}) replays a witness through both
    agent models in the same address space.  This module replays it
    through the {e wire}: every concrete input travels over a TCP or
    Unix-domain socket to an external switch process, execution is
    barrier-synchronized, and the observed trace key comes back in-band.
    Verdicts compare the two live observations — [L_confirmed] when they
    diverge, [L_refuted] when they agree — and any transport or process
    failure degrades that witness to [L_failed] with a
    {!Harness.Supervise.taxonomy} tag instead of aborting the run.

    Witness inputs ride inside SOFT vendor-message envelopes rather than
    naked on the stream, because reproducers are often deliberately
    malformed (claimed length ≠ physical length) and would mis-frame a
    raw socket; the envelope keeps framing sound while delivering the
    inner bytes exactly.  Plain OpenFlow is used for everything a real
    control channel needs: hello/features handshake, echo keepalive, and
    barrier request/reply. *)

module Conn = Openflow.Conn

(** {1 The loopback switch server} *)

val soft_vendor_id : int32
(** Vendor id of the SOFT replay envelope. *)

val serve :
  ?max_paths:int ->
  ?crash_after_barriers:int ->
  ?max_conns:int ->
  ?idle_deadline_ms:int ->
  ?on_listening:(unit -> unit) ->
  Switches.Agent_intf.t ->
  Conn.addr ->
  unit
(** Serve [agent] as a live switch on [addr] ([soft_cli switch-serve]).
    Each connection gets the switch side of the handshake, then the
    server accumulates envelope inputs until a barrier request, executes
    the agent on the accumulated concrete inputs, answers with an
    observation envelope (the normalized trace key, crash included — an
    agent crash is an {e observation}, exactly as in process) followed by
    the barrier reply, and resets for the next witness.  A faulting or
    silent peer only loses its own connection.  [crash_after_barriers]
    makes the server SIGKILL itself after that many barriers — the CI
    lever for killing the switch mid-replay.  [max_conns] bounds how many
    connections are served before returning (default: serve forever); a
    bounded server also returns once [idle_deadline_ms] passes with
    nobody connecting.  [on_listening] fires once the socket is bound. *)

(** {1 Live validation} *)

type endpoint = {
  ep_agent : string;  (** display name *)
  ep_addr : Conn.addr;
  ep_cmd : string option;
      (** spawn-and-supervise command ([None]: connect to an already
          running server and never restart it) *)
}

type status =
  | L_confirmed  (** the two live observations diverge: the finding is real on the wire *)
  | L_refuted  (** the live observations agree *)
  | L_failed of Harness.Supervise.taxonomy * string
      (** transport or process failure; the witness is undecided, not a verdict *)

type result = {
  l_status : status;
  l_key_a : string option;  (** live observation of endpoint A, when one arrived *)
  l_key_b : string option;
}

type summary = {
  ls_agent_a : string;
  ls_agent_b : string;
  ls_test : string;
  ls_confirmed : int;
  ls_refuted : int;
  ls_failed : int;
  ls_reconnects : int;  (** successful transport recoveries *)
  ls_restarts : int;  (** switch processes restarted by supervision *)
  ls_results : result list;
}

val validate_live :
  ?deadline_ms:int ->
  ?connect_attempts:int ->
  a:endpoint ->
  b:endpoint ->
  Harness.Test_spec.t ->
  Crosscheck.outcome ->
  summary
(** Replay every inconsistency of [outcome] against both live endpoints.
    A transport failure mid-witness triggers one recovery (reconnect
    with capped backoff; restart via {!Harness.Proc} when the endpoint
    is ours) and one retry before the witness degrades to [L_failed];
    later witnesses still run.  Never raises for any network or peer
    behaviour. *)

val failed : summary -> int

val exit_status : summary -> int
(** [1] when any witness is live-confirmed; [3] when none is confirmed
    but some are refuted or transport-failed (inconclusive); [0] clean.
    Combine with {!Report.exit_status} by letting [1] outrank [3]. *)

val merge_exit : int -> int -> int
(** [merge_exit base live] folds the crosscheck's exit status with the
    live summary's.  Live validation re-ranks the inconsistency verdict
    the way in-process [--validate] does: once witnesses were re-tested
    on the wire, an inconsistency only exits [1] if one was confirmed,
    and an all-refuted/all-failed validation is inconclusive ([3]) even
    though the symbolic crosscheck reported findings.  A live status of
    [0] (no witnesses to test) leaves [base] untouched. *)

val pp : Format.formatter -> summary -> unit
