(* SOFT's "group" tool (paper §3.4, §4.2): collapse the per-path results of
   one agent into one group per distinct normalized output result, with the
   group's input subspace expressed as a *balanced* disjunction of the
   member path conditions — the balanced or-tree minimizes the nesting
   depth handed to the solver, amortizing large queries exactly as the
   paper's grouping tool does. *)

open Smt
module Trace = Openflow.Trace

type group = {
  g_result : Trace.result;
  g_key : string; (* [Trace.result_key g_result] *)
  g_cond : Expr.boolean; (* disjunction of member path conditions *)
  g_member_conds : Expr.boolean list; (* the individual path conditions *)
  g_path_count : int;
}

type grouped = {
  gr_agent : string;
  gr_test : string;
  gr_groups : group list;
  gr_group_time : float; (* seconds spent grouping (Table 3) *)
}

let group_paths paths =
  let tbl : (string, Trace.result * Expr.boolean list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ((res : Trace.result), cond) ->
      let key = Trace.result_key res in
      match Hashtbl.find_opt tbl key with
      | Some (_, conds) -> conds := cond :: !conds
      | None ->
        Hashtbl.add tbl key (res, ref [ cond ]);
        order := key :: !order)
    paths;
  List.rev_map
    (fun key ->
      let res, conds = Hashtbl.find tbl key in
      let members = List.rev !conds in
      {
        g_result = res;
        g_key = key;
        g_cond = Expr.balanced_disj members;
        g_member_conds = members;
        g_path_count = List.length members;
      })
    !order

let of_saved (s : Harness.Serialize.saved) =
  let t0 = Mono.now () in
  let groups = group_paths s.Harness.Serialize.sv_paths in
  {
    gr_agent = s.sv_agent;
    gr_test = s.sv_test;
    gr_groups = groups;
    gr_group_time = Mono.elapsed t0;
  }

let of_run (r : Harness.Runner.run) = of_saved (Harness.Serialize.of_run r)

let distinct_results g = List.length g.gr_groups

(* --- structural subsumption between group disjunctions ----------------- *)

(* A group condition is a disjunction of member path conditions, each a
   conjunction of branch constraints.  [g2]'s condition implies [g1]'s
   whenever every member of [g2] is a conjunctive extension of some
   member of [g1]: m2 = m1 ∧ extra ⊨ m1, and a disjunction is implied
   memberwise.  Hash-consing makes the check purely structural — equal
   conjuncts are physically equal, so conjunct-id subset inclusion is a
   sound (incomplete) implication test costing no solver call. *)

let conjunct_ids b =
  let rec go acc (b : Expr.boolean) =
    match b.Expr.bnode with
    | Expr.And (x, y) -> go (go acc x) y
    | _ -> b.Expr.bid :: acc
  in
  List.sort_uniq compare (go [] b)

(* subset inclusion over sorted id lists *)
let rec subset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
    if x = y then subset xs' ys' else if y < x then subset xs ys' else false

let subsumes g1 g2 =
  let m1s = List.map conjunct_ids g1.g_member_conds in
  List.for_all
    (fun m2 ->
      let m2_ids = conjunct_ids m2 in
      List.exists (fun m1_ids -> subset m1_ids m2_ids) m1s)
    g2.g_member_conds

(* Quadratic in groups and members; past these sizes the check costs
   more than the solver calls it might save, so the caller gets no
   edges and simply probes every row. *)
let max_subsumption_groups = 256
let max_subsumption_members = 4096

let subsumption_edges groups =
  let n = Array.length groups in
  let total_members =
    Array.fold_left (fun acc g -> acc + List.length g.g_member_conds) 0 groups
  in
  if n > max_subsumption_groups || total_members > max_subsumption_members then
    Array.make n []
  else
    let members =
      Array.map (fun g -> List.map conjunct_ids g.g_member_conds) groups
    in
    Array.init n (fun i ->
        let edges = ref [] in
        for i' = n - 1 downto 0 do
          if
            i' <> i
            && List.for_all
                 (fun m2 -> List.exists (fun m1 -> subset m1 m2) members.(i'))
                 members.(i)
          then edges := i' :: !edges
        done;
        !edges)

let pp fmt g =
  Format.fprintf fmt "@[<v>%s/%s: %d distinct results from %d paths (%.3fs)@ " g.gr_agent
    g.gr_test (distinct_results g)
    (List.fold_left (fun acc grp -> acc + grp.g_path_count) 0 g.gr_groups)
    g.gr_group_time;
  List.iteri
    (fun i grp ->
      Format.fprintf fmt "  [%d] %d paths: %s@ " i grp.g_path_count
        (if grp.g_key = "" then "<no output>" else grp.g_key))
    g.gr_groups;
  Format.fprintf fmt "@]"
