(** SOFT's inconsistency finder (paper §3.4, §4.2): for every pair of
    *different* grouped results across two agents, ask the solver whether
    [C_A(i) ∧ C_B(j)] is satisfiable.  Each satisfiable pair is an
    inconsistency and its model a concrete witness input.

    This stage is where the paper's own tooling blew up (STP on the Open
    vSwitch FlowMod disjunctions, §5.2).  The defences here: per-query
    solver budgets, a chunk-split retry ladder on [Unknown] (the paper's
    proposed remedy), pairs recorded as *undecided* instead of silently
    dropped, and periodic checkpoints so a killed run resumes. *)

type inconsistency = {
  i_result_a : Openflow.Trace.result;
  i_result_b : Openflow.Trace.result;
  i_witness : Smt.Model.t;  (** concrete inputs exhibiting the divergence *)
  i_cond : Smt.Expr.boolean;  (** the satisfiable conjunction *)
  i_paths_a : int;
  i_paths_b : int;
}

type outcome = {
  o_agent_a : string;
  o_agent_b : string;
  o_test : string;
  o_inconsistencies : inconsistency list;
  o_pairs_checked : int;
  o_pairs_equal : int;  (** pairs skipped: identical results *)
  o_pairs_undecided : (string * string) list;
      (** result-key pairs the solver gave up on within its budget, after
          the full retry ladder — "gave up", not "no inconsistency" *)
  o_pair_faults : int;
      (** pairs lost to a fault (a {!Smt.Solver.Solver_error} or an
          injected {!Harness.Chaos.Injected_fault}) rather than an honest
          [Unknown]; counted in [o_pairs_undecided] too, and left out of
          checkpoints so a resumed run retries them *)
  o_pairs_quarantined : (string * string * Harness.Supervise.taxonomy) list;
      (** pairs supervision struck out after the full retry ladder, tagged
          with the last failure's taxonomy; counted in [o_pairs_undecided]
          too, and — unlike transient faults — persisted in the checkpoint
          so a resume skips known-poison pairs *)
  o_retries : int;
      (** supervised attempts beyond each pair's first, summed *)
  o_check_time : float;  (** seconds in the intersection stage (Table 3) *)
}

val chunk_conds : int -> Smt.Expr.boolean list -> Smt.Expr.boolean list
(** [chunk_conds n conds] groups [conds] into balanced disjunctions of at
    most [n] members each, preserving order.
    @raise Invalid_argument if [n <= 0]. *)

type pair_verdict =
  | Pair_sat of Smt.Model.t  (** inconsistent, with a witness *)
  | Pair_unsat  (** proven disjoint *)
  | Pair_undecided  (** every budgeted attempt returned Unknown *)

val default_retry_ladder : int list
(** Chunk sizes tried, finest last, after an [Unknown]: [[16; 4; 1]]. *)

val sat_pair :
  ?split:int ->
  ?budget:Smt.Solver.budget ->
  ?retry:int list ->
  Grouping.group ->
  Grouping.group ->
  pair_verdict
(** Decide one group pair.  [split] checks chunk pairs of at most [n]
    member conditions from the start; on an [Unknown] the disjunctions are
    re-checked at each strictly finer rung of [retry] (default
    {!default_retry_ladder}) before the verdict degrades to
    [Pair_undecided].  [budget] bounds each individual solver query and
    defaults to the solver's process-wide default budget. *)

exception Checkpoint_error of string
(** Raised when an *intact* resume file (its whole-file checksum holds)
    belongs to different runs — the checkpoint carries the test, agent
    names, and a fingerprint of both groups' result keys.  A file that
    fails its checksum (truncated, bit-flipped, or pre-checksum format) is
    never an error: it degrades to a cold start with an [on_warning]
    message. *)

val solver_pool_hooks : unit -> (unit -> unit) * (unit -> unit)
(** [(worker_init, worker_exit)] closures for a {!Harness.Pool.run} whose
    tasks issue solver queries: [worker_init] replays the calling
    domain's solver config (budget, certify regime, cache capacity) into
    the fresh worker's context, and [worker_exit] merges the worker's
    query/cache counters back into the caller's
    {!Smt.Solver.stats} record (safely, even when workers exit
    concurrently).  Capture the pair on the domain whose config should
    propagate. *)

val check :
  ?split:int ->
  ?budget:Smt.Solver.budget ->
  ?retry:int list ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?jobs:int ->
  ?incremental:bool ->
  ?prune:bool ->
  ?share:bool ->
  ?exchange:bool ->
  ?force_pool:bool ->
  ?supervise:Harness.Supervise.policy ->
  ?on_found:(inconsistency -> unit) ->
  ?on_warning:(string -> unit) ->
  Grouping.grouped ->
  Grouping.grouped ->
  outcome
(** Crosscheck two agents' grouped phase-1 results for the same test.

    [split]: check chunk pairs of at most [n] member conditions instead of
    one monolithic disjunction pair — same answers, more but smaller
    queries with an early exit.

    [budget]/[retry]: see {!sat_pair}.  Pairs that stay [Unknown] end up in
    [o_pairs_undecided] instead of aborting or silently vanishing.

    [checkpoint]: snapshot progress (pairs decided, witnesses found) to
    this file every [checkpoint_every] (default 64) newly decided pairs,
    via an atomic rename; a final snapshot is written on completion.
    [resume]: load a previous snapshot and skip the pairs it already
    decided — a missing file is a fresh start, a corrupt one a warned cold
    start, and an intact-but-mismatched one raises {!Checkpoint_error}.  A
    killed-then-resumed run yields the same outcome as an uninterrupted
    one ([on_found] fires only for newly discovered inconsistencies).

    [jobs] (default 1): solve pairs on up to [jobs] domains via
    {!Harness.Pool}.  Each worker gets its own solver context seeded from
    the caller's config; all shared mutation — the decided table,
    checkpoint writes, counters, [on_found] — stays serialized on the
    calling domain, so checkpoint/resume semantics are unchanged.  The
    returned outcome's lists are ordered row-major over the group
    matrices regardless of [jobs]; with deterministic (query-count)
    budgets the report is identical at any [jobs].  [on_found] fires in
    completion order when [jobs > 1].  [jobs = 1] runs everything on the
    calling domain, exactly as before.

    [incremental] (default true): solve each row of the pair matrix on one
    persistent {!Smt.Session} — the row's common conjunct [C_A(i)] is
    bit-blasted once as hard clauses, each [C_B(j)] is guarded by a fresh
    activation literal, and learnt clauses, variable activities and saved
    phases carry across the row.  A pool task is a whole row — in every
    mode — so [jobs] parallelism is preserved and dispatch cost scales
    with rows, not pairs.  A query the session's budget cannot decide
    falls back to the scratch retry ladder (counted in
    [scratch_fallbacks]).  Reports are byte-identical to
    [~incremental:false]: session Sat witnesses are re-derived canonically
    from scratch and the fault-injection stream is query-aligned (see
    {!Smt.Session}).  An explicit [split] or an enabled certify regime
    forces the scratch path (chunked queries share no row conjunct; an
    assumption-failure Unsat has no replayable DRUP proof).

    [share] (default true): when the effective budget is unlimited (and
    [incremental] applies), bit-blast {e every} group condition of both
    sides once into a shared immutable CNF prefix ({!Smt.Session.make_shared});
    each worker domain adopts a {!Smt.Sat.copy} instead of re-blasting
    per-row bases, and every pair is decided by a pure assumption solve
    on its adopted copy (counted in [shared_solves]/[bases_adopted]).
    Budgeted runs ignore [share] — a budgeted Unknown could then depend
    on cross-domain scheduling — and use per-row sessions as before.
    Because unbudgeted verdicts are semantic, reports stay byte-identical
    to [~share:false] and across every [jobs].  [--no-share-base] on the
    CLI.

    [exchange] (default true): with sharing active and [jobs > 1], the
    adopted copies exchange low-LBD learnt clauses through a bounded
    lock-free ring ({!Smt.Exchange}), imported at solve entries and
    restart boundaries (counted in [clauses_exported]/[clauses_imported]).
    Sound because adopted copies never gain problem clauses; affects
    solve time only, never verdicts.  [--no-clause-exchange] on the CLI.

    [force_pool] (default false): run pass 2 through the full pool
    machinery even at [jobs = 1] (one worker domain, coordinator,
    completion queue) instead of the guaranteed sequential fast path —
    for measuring pool scheduling overhead on single-core machines.

    [prune] (default true): before solving a row pairwise, decide
    [C_A(i) ∧ common(B)] once, where [common(B)] disjoins {e all} of B's
    group conditions; an Unsat probe proves every pair of the row
    disjoint and records them clean wholesale (counted in [rows_pruned]
    and [pairs_skipped_by_pruning]).  The probes run serially on the
    calling domain over one incremental session, before — and
    identically under — either [incremental] mode, so reports stay
    byte-identical to [~prune:false] whenever budgets do not bite (a
    probe's whole-row Unsat can decide pairs a tightly budgeted pairwise
    attempt would have left undecided).  The assumption solve's failed
    core attributes each pruning ({!Smt.Session.check_attributed});
    structural subsumption between row conditions
    ({!Grouping.subsumption_edges}) reuses already-pruned verdicts
    without probing (counted in [subsumed_groups]).  Probing stops after
    a few consecutive non-pruning probes — matrices whose sides overlap
    everywhere pay at most that fixed cost.  Certify mode disables the
    pass (a pruning Unsat would carry no replayable proof).

    [supervise]: run every pair solve under a {!Harness.Supervise} watchdog
    — per-attempt wall-clock deadlines enforced preemptively by a monitor
    domain, a memory-pressure guard, and the retry/backoff ladder.  A pair
    that strikes out is {e quarantined}: recorded undecided with a failure
    taxonomy, checkpointed (format v3) so a resume skips it, and reported
    in [o_pairs_quarantined].  Without supervision (the default) behaviour
    is exactly the pre-supervision code path.  With supervision enabled
    but no deadline tripping, reports remain byte-identical to
    unsupervised runs at any [jobs].

    [on_warning] (default: print to stderr) receives degradation notices
    such as a corrupt resume file or a quarantined pair.

    @raise Invalid_argument if the two runs are of different tests, or if
    [jobs < 1]. *)

val count : outcome -> int

val undecided_count : outcome -> int
(** Number of pairs the run gave up on; nonzero means the inconsistency
    list is a lower bound, not a verdict. *)

val quarantined_count : outcome -> int
(** Number of pairs the supervision layer quarantined (a subset of
    {!undecided_count}). *)

val pp : Format.formatter -> outcome -> unit

val pp_stable : Format.formatter -> outcome -> unit
(** {!pp} minus the check-time field — every byte a pure function of the
    verdicts.  The service layer persists this rendering and asserts that
    a killed-and-recovered run reproduces it byte for byte. *)

val render_stable : outcome -> string
(** [Format.asprintf "%a" pp_stable]. *)
