(* Replay-confirmed inconsistencies.

   A crosscheck inconsistency rests on the whole symbolic pipeline being
   right: the agents' symbolic semantics, grouping, the solver, and the
   witness extraction.  This module removes that trust by *re-executing*
   both agents on the concrete witness input (paper §4.2: every reported
   inconsistency comes with a replayable test case) and checking that the
   two concrete traces really diverge:

   - [Confirmed]: the replayed traces differ — the inconsistency is real,
     independent of the solver's answer;
   - [Refuted]: the replayed traces are identical — the report is wrong
     somewhere (a solver soundness bug, a grouping bug, a witness that
     does not select the claimed paths) and must not be shown as a
     finding;
   - [Replay_failed]: re-execution could not reproduce either claimed
     path (or itself raised) — the report is suspect and counts as
     unvalidated, not as confirmed.

   Replay pins every witness variable to its concrete value and runs the
   same engine, so it shares the agent models but *not* the crosscheck's
   solver reasoning: the path taken is forced by unit-propagating
   equalities, and the verdict is a syntactic comparison of normalized
   trace keys. *)

module Runner = Harness.Runner
module Test_spec = Harness.Test_spec
module Trace = Openflow.Trace

type status =
  | Confirmed
  | Refuted
  | Replay_failed of string

type result = {
  v_inc : Crosscheck.inconsistency;
  v_status : status;
  v_replay_a : Trace.result option; (* concrete trace of agent A, if replay reached one *)
  v_replay_b : Trace.result option;
}

type summary = {
  vs_agent_a : string;
  vs_agent_b : string;
  vs_test : string;
  vs_confirmed : int;
  vs_refuted : int;
  vs_failed : int;
  vs_results : result list;
}

let status_name = function
  | Confirmed -> "confirmed"
  | Refuted -> "REFUTED"
  | Replay_failed _ -> "replay-failed"

let replay ?max_paths ?solver_budget agent spec ~witness ~who =
  match Runner.execute_replay ?max_paths ?solver_budget agent spec ~witness with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "%s: no explored path matches the witness" who)
  | exception Out_of_memory -> raise Out_of_memory
  | exception e -> Error (Printf.sprintf "%s: replay raised %s" who (Printexc.to_string e))

let validate_one ?max_paths ?solver_budget agent_a agent_b (spec : Test_spec.t)
    (inc : Crosscheck.inconsistency) =
  let witness = inc.Crosscheck.i_witness in
  let ra = replay ?max_paths ?solver_budget agent_a spec ~witness ~who:"agent-a" in
  let rb = replay ?max_paths ?solver_budget agent_b spec ~witness ~who:"agent-b" in
  let status =
    match (ra, rb) with
    | Ok ta, Ok tb ->
      if Trace.result_key ta <> Trace.result_key tb then Confirmed else Refuted
    | Error e, Ok _ | Ok _, Error e -> Replay_failed e
    | Error ea, Error eb -> Replay_failed (ea ^ "; " ^ eb)
  in
  {
    v_inc = inc;
    v_status = status;
    v_replay_a = (match ra with Ok t -> Some t | Error _ -> None);
    v_replay_b = (match rb with Ok t -> Some t | Error _ -> None);
  }

let validate ?max_paths ?solver_budget agent_a agent_b (spec : Test_spec.t)
    (outcome : Crosscheck.outcome) =
  let results =
    List.map
      (validate_one ?max_paths ?solver_budget agent_a agent_b spec)
      outcome.Crosscheck.o_inconsistencies
  in
  let count st =
    List.length
      (List.filter
         (fun r ->
           match (r.v_status, st) with
           | Confirmed, `C | Refuted, `R | Replay_failed _, `F -> true
           | _ -> false)
         results)
  in
  {
    vs_agent_a = outcome.Crosscheck.o_agent_a;
    vs_agent_b = outcome.Crosscheck.o_agent_b;
    vs_test = outcome.Crosscheck.o_test;
    vs_confirmed = count `C;
    vs_refuted = count `R;
    vs_failed = count `F;
    vs_results = results;
  }

(* Inconsistencies whose replay did not confirm them; nonzero means the
   report cannot be fully trusted as-is. *)
let unconfirmed s = s.vs_refuted + s.vs_failed

let all_confirmed s = unconfirmed s = 0

let pp_result fmt r =
  Format.fprintf fmt "%s" (status_name r.v_status);
  (match r.v_status with
   | Replay_failed msg -> Format.fprintf fmt " (%s)" msg
   | Confirmed | Refuted -> ());
  match (r.v_replay_a, r.v_replay_b) with
  | Some ta, Some tb ->
    Format.fprintf fmt "@   replay a: %s@   replay b: %s" (Trace.result_key ta)
      (Trace.result_key tb)
  | _ -> ()

let pp fmt s =
  Format.fprintf fmt "@[<v>validation (%s vs %s on %s): %d confirmed, %d refuted, %d replay-failed@ "
    s.vs_agent_a s.vs_agent_b s.vs_test s.vs_confirmed s.vs_refuted s.vs_failed;
  List.iteri
    (fun i r -> Format.fprintf fmt "inconsistency %d: %a@ " i pp_result r)
    s.vs_results;
  Format.fprintf fmt "@]"
