(** SOFT's "group" tool (paper §3.4, §4.2): collapse per-path results into
    one group per distinct normalized output, the group's input subspace
    being the balanced-tree disjunction of the member path conditions.
    Grouping is what reduces solver queries from |paths_A|·|paths_B| to
    |RES_A|·|RES_B| — the 1–5 orders of magnitude of Table 3. *)

type group = {
  g_result : Openflow.Trace.result;
  g_key : string;  (** [Trace.result_key g_result] *)
  g_cond : Smt.Expr.boolean;  (** disjunction of member path conditions *)
  g_member_conds : Smt.Expr.boolean list;
  g_path_count : int;
}

type grouped = {
  gr_agent : string;
  gr_test : string;
  gr_groups : group list;
  gr_group_time : float;  (** seconds spent grouping (Table 3) *)
}

val group_paths : (Openflow.Trace.result * Smt.Expr.boolean) list -> group list

val of_saved : Harness.Serialize.saved -> grouped
(** Group a phase-1 run loaded from disk (the decoupled workflow). *)

val of_run : Harness.Runner.run -> grouped

val distinct_results : grouped -> int
val pp : Format.formatter -> grouped -> unit

(** {1 Structural subsumption}

    A sound, solver-free implication test between group conditions,
    exploiting hash-consing: member path conditions are conjunctions of
    physically-shared branch constraints, so conjunct-id subset
    inclusion witnesses implication. *)

val subsumes : group -> group -> bool
(** [subsumes g1 g2] is [true] only if [g2.g_cond] implies [g1.g_cond]:
    every member of [g2] conjunctively extends some member of [g1].
    Incomplete by design (a [false] proves nothing); never wrong when
    [true].  The crosscheck row-pruner uses it to reuse an
    already-pruned row's verdict. *)

val subsumption_edges : group array -> int list array
(** [subsumption_edges gs] has, at index [i], the indices [i' <> i] with
    [subsumes gs.(i') gs.(i)] — the rows whose conditions row [i]'s
    condition implies, in ascending order.  Returns all-empty lists past
    an internal size cutoff where the quadratic structural scan would
    cost more than the solver calls it can save. *)
