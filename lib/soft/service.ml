(* Crash-only crosscheck service: a WAL-backed job store over the
   supervised crosscheck pipeline.

   The batch CLI treats a run as a process lifetime; the service treats
   the process as disposable.  All state that matters lives in three
   on-disk structures under one service directory:

     queue/pending/*.job   submissions (Harness.Jobqueue spool files)
     wal.log               the write-ahead log (Harness.Journal)
     store/                content-addressed results (Harness.Store)
     reports/<id>.report   final per-job reports

   and there is exactly one startup path: {!open_service} replays the
   WAL.  A fresh directory is merely the recovery of an empty log, so
   the recovery code is exercised on every start, not only after a
   disaster.  [kill -9] at any instant loses at most the units in
   flight: everything the daemon acknowledged is behind an fsynced WAL
   record.

   Commit order per unit of work (one (agent A, agent B, test) triple):

     start record -> phase-1 artefacts into store -> verdict payload
     into store -> verdict record

   The verdict record is written only after its store entry is durable,
   so a replayed verdict always has its bytes; a verdict record whose
   store entry is nonetheless missing or corrupt (store and WAL can tear
   independently) is dropped on recovery and the unit re-runs — the
   store's corrupt-reads-as-absent contract makes the worst crash
   outcome recomputation, never a wrong answer.  The job report file is
   published atomically before the [done] record; a [done] job with a
   missing report is rebuilt from the store on recovery.

   Content addressing is what makes re-runs cheap.  Phase-1 runs are
   keyed by (agent name, scenario hash, path budget); crosscheck
   verdicts by (fingerprint A, fingerprint B, scenario hash, solver
   signature) where a fingerprint is the digest of the serialized
   phase-1 bytes.  Resubmitting an unchanged job is answered entirely
   from the store with zero new SAT calls; re-running after an
   agent-model edit (--fresh) re-executes phase 1 but re-solves only the
   partitions whose fingerprint actually changed.

   Degradation under pressure, in escalation order:
   - soft heap watermark: shed the solver memo cache, force a major GC,
     and drop to one crosscheck worker ([degraded]);
   - hard heap watermark: additionally stop admitting spool files, so
     the queue backs up and {!submit}'s stateless depth check starts
     refusing with [`Backpressure] — the daemon never grows an unbounded
     in-memory queue. *)

module Journal = Harness.Journal
module Store = Harness.Store
module Jobqueue = Harness.Jobqueue
module Serialize = Harness.Serialize
module Supervise = Harness.Supervise

(* --- configuration ---------------------------------------------------- *)

type config = {
  sc_agents : (string * Switches.Agent_intf.t) list;
  sc_max_paths : int;
  sc_jobs : int;
  sc_supervise : Supervise.policy option;
  sc_crash_limit : int;
  sc_max_pending : int;
  sc_soft_mb : int option;
  sc_hard_mb : int option;
  sc_fsync : bool;
  sc_on_warning : string -> unit;
}

let default_warning msg = Printf.eprintf "soft serve: warning: %s\n%!" msg

let config ?(max_paths = Harness.Runner.default_max_paths) ?(jobs = 1) ?supervise
    ?(crash_limit = 3) ?(max_pending = 64) ?soft_mb ?hard_mb ?(fsync = true)
    ?(on_warning = default_warning) ~agents () =
  if jobs < 1 then invalid_arg "Service.config: jobs must be >= 1";
  if crash_limit < 1 then invalid_arg "Service.config: crash_limit must be >= 1";
  {
    sc_agents = agents;
    sc_max_paths = max_paths;
    sc_jobs = jobs;
    sc_supervise = supervise;
    sc_crash_limit = crash_limit;
    sc_max_pending = max_pending;
    sc_soft_mb = soft_mb;
    sc_hard_mb = hard_mb;
    sc_fsync = fsync;
    sc_on_warning = on_warning;
  }

(* --- state ------------------------------------------------------------ *)

type unit_result =
  | U_verdict of {
      uv_cached : bool;
      uv_inc : int;
      uv_undec : int;
      uv_faults : int;
      uv_quar : int;
      uv_key : string;
    }
  | U_quarantined of string

type unit_state = { mutable us_starts : int; mutable us_result : unit_result option }

type job = {
  jb_id : string;
  jb_agent_a : string;
  jb_agent_b : string;
  jb_fresh : bool;
  jb_tests : string array;
  jb_units : unit_state array;
  mutable jb_done : bool;
}

type t = {
  st_dir : string;
  st_cfg : config;
  st_store : Store.t;
  mutable st_wal : Journal.t;
  st_jobs : (string, job) Hashtbl.t;
  mutable st_order : string list; (* job ids, submission order *)
  mutable st_degraded : bool;
  mutable st_sheds : int;
  mutable st_replayed : int; (* WAL records recovered at open *)
  mutable st_requeued : int; (* in-flight units recovery re-enqueued *)
}

let wal_path dir = Filename.concat dir "wal.log"
let store_dir dir = Filename.concat dir "store"
let queue_dir dir = Filename.concat dir "queue"
let reports_dir dir = Filename.concat dir "reports"
let report_path dir id = Filename.concat (reports_dir dir) (id ^ ".report")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- keys ------------------------------------------------------------- *)

let hex s = Digest.to_hex (Digest.string s)

(* Identity of the *inputs* a test feeds the agents: id, prose and
   message count pin the spec revision without hashing expression
   graphs. *)
let scenario_hash (spec : Harness.Test_spec.t) =
  hex
    (String.concat "\x00"
       [ spec.Harness.Test_spec.id; spec.description; string_of_int spec.message_count ])

let phase1_key ~agent ~scenario ~max_paths =
  hex (String.concat "\x00" [ "p1"; agent; scenario; string_of_int max_paths ])

(* Everything that can change phase-2 verdict *bytes* must be in the
   verdict key: solver budgets and the certify regime alter which pairs
   decide.  Worker count is deliberately absent — reports are
   byte-identical at any [jobs]. *)
let solver_signature () =
  let b = Smt.Solver.get_default_budget () in
  let opt = function None -> "-" | Some n -> string_of_int n in
  Printf.sprintf "c=%s;d=%s;t=%s;cert=%b"
    (opt b.Smt.Solver.b_max_conflicts) (opt b.b_max_decisions) (opt b.b_timeout_ms)
    (Smt.Solver.certify_enabled ())

let verdict_key ~fp_a ~fp_b ~scenario =
  hex (String.concat "\x00" [ "v1"; fp_a; fp_b; scenario; solver_signature () ])

(* --- WAL record grammar ----------------------------------------------- *)

(* Payloads are single lines; the journal layer escapes and checksums
   them.  Agent names and test ids are token-shaped (no spaces), free
   text goes last.  Unknown record kinds are skipped on replay so an
   older daemon can recover a newer log. *)

let r_submit j =
  Printf.sprintf "submit %s %d %s %s %s" j.jb_id
    (if j.jb_fresh then 1 else 0)
    j.jb_agent_a j.jb_agent_b
    (String.concat "," (Array.to_list j.jb_tests))

let r_start id k = Printf.sprintf "start %s %d" id k

let r_verdict id k (v : unit_result) =
  match v with
  | U_verdict u ->
    Printf.sprintf "verdict %s %d %d %d %d %d %d %s" id k
      (if u.uv_cached then 1 else 0)
      u.uv_inc u.uv_undec u.uv_faults u.uv_quar u.uv_key
  | U_quarantined msg -> Printf.sprintf "quarantine %s %d %s" id k msg

let r_done id exit_code = Printf.sprintf "done %s %d" id exit_code

(* --- replay ----------------------------------------------------------- *)

type replayed = {
  rp_jobs : (string, job) Hashtbl.t;
  rp_order : string list;
  rp_records : int;
  rp_lost : int; (* verdict records whose store entry is gone *)
}

let replay_records ~store records =
  let jobs = Hashtbl.create 16 in
  let order = ref [] in
  let lost = ref 0 in
  let n = ref 0 in
  let find id = Hashtbl.find_opt jobs id in
  let unit_of id k f =
    match find id with
    | Some j when k >= 0 && k < Array.length j.jb_units -> f j j.jb_units.(k)
    | _ -> ()
  in
  List.iter
    (fun r ->
      incr n;
      match String.split_on_char ' ' r with
      | "submit" :: id :: fresh :: a :: b :: tests :: [] ->
        if not (Hashtbl.mem jobs id) then begin
          let tests = Array.of_list (String.split_on_char ',' tests) in
          Hashtbl.replace jobs id
            {
              jb_id = id;
              jb_agent_a = a;
              jb_agent_b = b;
              jb_fresh = fresh = "1";
              jb_tests = tests;
              jb_units =
                Array.init (Array.length tests) (fun _ ->
                    { us_starts = 0; us_result = None });
              jb_done = false;
            };
          order := id :: !order
        end
      | "start" :: id :: k :: [] ->
        (match int_of_string_opt k with
         | Some k -> unit_of id k (fun _ u -> u.us_starts <- u.us_starts + 1)
         | None -> ())
      | "verdict" :: id :: k :: cached :: inc :: undec :: faults :: quar :: key :: [] ->
        (match
           ( int_of_string_opt k, int_of_string_opt inc, int_of_string_opt undec,
             int_of_string_opt faults, int_of_string_opt quar )
         with
         | Some k, Some inc, Some undec, Some faults, Some quar ->
           unit_of id k (fun _ u ->
               (* A verdict is only as durable as its payload: the WAL
                  commit follows the store publish, but the store file can
                  rot independently.  Absent bytes -> the unit re-runs. *)
               if Store.mem store ~key then
                 u.us_result <-
                   Some
                     (U_verdict
                        {
                          uv_cached = cached = "1";
                          uv_inc = inc;
                          uv_undec = undec;
                          uv_faults = faults;
                          uv_quar = quar;
                          uv_key = key;
                        })
               else incr lost)
         | _ -> ())
      | "quarantine" :: id :: k :: rest ->
        (match int_of_string_opt k with
         | Some k ->
           unit_of id k (fun _ u ->
               u.us_result <- Some (U_quarantined (String.concat " " rest)))
         | None -> ())
      | "done" :: id :: _exit :: [] ->
        (match find id with Some j -> j.jb_done <- true | None -> ())
      | _ -> ())
    records;
  { rp_jobs = jobs; rp_order = List.rev !order; rp_records = !n; rp_lost = !lost }

(* The canonical record sequence for the current state — what compaction
   rewrites the WAL to.  Unsettled starts are preserved (they feed the
   crash-loop quarantine), settled units keep exactly one record. *)
let canonical_records jobs order =
  let buf = ref [] in
  let emit r = buf := r :: !buf in
  List.iter
    (fun id ->
      match Hashtbl.find_opt jobs id with
      | None -> ()
      | Some j ->
        emit (r_submit j);
        Array.iteri
          (fun k u ->
            match u.us_result with
            | Some v -> emit (r_verdict j.jb_id k v)
            | None -> for _ = 1 to u.us_starts do emit (r_start j.jb_id k) done)
          j.jb_units;
        if j.jb_done then emit (r_done j.jb_id 0))
    order;
  List.rev !buf

(* --- reports ---------------------------------------------------------- *)

let job_counts j =
  Array.fold_left
    (fun (inc, undec, faults) u ->
      match u.us_result with
      | Some (U_verdict v) -> (inc + v.uv_inc, undec + v.uv_undec, faults + v.uv_faults)
      | Some (U_quarantined _) -> (inc, undec, faults + 1)
      | None -> (inc, undec, faults))
    (0, 0, 0) j.jb_units

let job_exit j =
  let inc, undec, faults = job_counts j in
  Report.exit_of_counts ~inconsistencies:inc ~undecided:undec ~faults

(* Strip the "counts i u f q" first line of a store verdict entry,
   leaving the stable rendering. *)
let verdict_text content =
  match String.index_opt content '\n' with
  | Some i -> String.sub content (i + 1) (String.length content - i - 1)
  | None -> content

let render_report store j =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "soft-report 1\njob %s\n%s vs %s, %d tests\n" j.jb_id j.jb_agent_a
    j.jb_agent_b (Array.length j.jb_tests);
  Array.iteri
    (fun k u ->
      Printf.bprintf buf "== test %s ==\n" j.jb_tests.(k);
      match u.us_result with
      | Some (U_verdict v) ->
        (match Store.get store ~key:v.uv_key with
         | Some content -> Buffer.add_string buf (verdict_text content)
         | None -> Printf.bprintf buf "verdict payload lost (%s)\n" v.uv_key)
      | Some (U_quarantined msg) ->
        Printf.bprintf buf "%s vs %s on %s: quarantined (%s)\n" j.jb_agent_a j.jb_agent_b
          j.jb_tests.(k) msg
      | None -> Printf.bprintf buf "unit not settled\n")
    j.jb_units;
  Printf.bprintf buf "exit %d\n" (job_exit j);
  Buffer.contents buf

let write_report ~fsync dir j content =
  mkdir_p (reports_dir dir);
  let final = report_path dir j.jb_id in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp final

(* --- recovery: the only startup path ---------------------------------- *)

let open_service cfg dir =
  mkdir_p dir;
  let store = Store.open_store ~fsync:cfg.sc_fsync (store_dir dir) in
  let rp = replay_records ~store (Journal.replay (wal_path dir)) in
  if rp.rp_lost > 0 then
    cfg.sc_on_warning
      (Printf.sprintf "%d verdict record(s) lost their store payload; re-running those units"
         rp.rp_lost);
  let requeued = ref 0 in
  (* Crash-loop quarantine: a unit started [crash_limit] times without
     settling took the daemon down each time — poison.  Recovery, not the
     hot path, makes this call: only here is the full start count known. *)
  Hashtbl.iter
    (fun _ j ->
      if not j.jb_done then
        Array.iter
          (fun u ->
            match u.us_result with
            | None when u.us_starts >= cfg.sc_crash_limit ->
              u.us_result <-
                Some
                  (U_quarantined
                     (Printf.sprintf "crash-loop: %d starts without a verdict" u.us_starts))
            | None when u.us_starts > 0 -> incr requeued
            | _ -> ())
          j.jb_units)
    rp.rp_jobs;
  (* Compact: the canonical sequence replaces whatever tail of duplicate
     starts and superseded records the crashes left behind. *)
  Journal.rewrite ~fsync:cfg.sc_fsync (wal_path dir)
    (canonical_records rp.rp_jobs rp.rp_order);
  let wal = Journal.create ~fsync:cfg.sc_fsync (wal_path dir) in
  let t =
    {
      st_dir = dir;
      st_cfg = cfg;
      st_store = store;
      st_wal = wal;
      st_jobs = rp.rp_jobs;
      st_order = rp.rp_order;
      st_degraded = false;
      st_sheds = 0;
      st_replayed = rp.rp_records;
      st_requeued = !requeued;
    }
  in
  (* Rebuild reports a crash ate between the last verdict and [done] —
     and re-finalize jobs whose every unit settled before the crash. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.st_jobs id with
      | Some j
        when Array.for_all (fun u -> u.us_result <> None) j.jb_units
             && ((not j.jb_done) || not (Sys.file_exists (report_path dir id))) ->
        write_report ~fsync:cfg.sc_fsync dir j (render_report store j);
        if not j.jb_done then begin
          Journal.append wal (r_done id (job_exit j));
          j.jb_done <- true
        end
      | _ -> ())
    t.st_order;
  (* Spool files whose submission already reached the WAL are debris from
     a crash between journal and dequeue. *)
  List.iter
    (fun (s : Jobqueue.submitted) ->
      if Hashtbl.mem t.st_jobs s.Jobqueue.sb_id then
        Jobqueue.remove (queue_dir dir) s.Jobqueue.sb_id)
    (Jobqueue.pending (queue_dir dir));
  t

let close t = Journal.close t.st_wal
let replayed_records t = t.st_replayed
let requeued_units t = t.st_requeued
let degraded t = t.st_degraded
let sheds t = t.st_sheds

(* --- submission (client side; shares no state with the daemon) -------- *)

let job_payload ~agent_a ~agent_b ~fresh ~tests =
  Printf.sprintf "agents %s %s\nfresh %d\ntests %s\n" agent_a agent_b
    (if fresh then 1 else 0)
    (String.concat "," tests)

let parse_job_payload payload =
  let lines = String.split_on_char '\n' payload in
  let field key =
    List.find_map
      (fun l ->
        let p = key ^ " " in
        if String.length l > String.length p && String.sub l 0 (String.length p) = p then
          Some (String.sub l (String.length p) (String.length l - String.length p))
        else None)
      lines
  in
  match (field "agents", field "fresh", field "tests") with
  | Some agents, Some fresh, Some tests -> (
    match String.split_on_char ' ' agents with
    | [ a; b ] -> Some (a, b, fresh = "1", String.split_on_char ',' tests)
    | _ -> None)
  | _ -> None

let submit ?(fresh = false) ?max_pending dir ~agent_a ~agent_b ~tests =
  if tests = [] then invalid_arg "Service.submit: empty test list";
  Jobqueue.submit ?max_pending (queue_dir dir) (job_payload ~agent_a ~agent_b ~fresh ~tests)

(* --- the drain loop --------------------------------------------------- *)

let shed_caches t =
  let before = Smt.Solver.cache_len () in
  Smt.Solver.clear_cache ();
  Gc.major ();
  t.st_sheds <- t.st_sheds + 1;
  t.st_degraded <- true;
  t.st_cfg.sc_on_warning
    (Printf.sprintf "memory pressure: shed %d cached queries, degraded to 1 worker" before)

let over watermark =
  match watermark with None -> false | Some mb -> Supervise.heap_mb () > float_of_int mb

let check_pressure t = if over t.st_cfg.sc_soft_mb then shed_caches t

(* Admit journaled submissions from the spool.  Hard watermark: stop
   admitting, let depth-based backpressure propagate to submitters. *)
let intake t =
  if not (over t.st_cfg.sc_hard_mb) then
    List.iter
      (fun (s : Jobqueue.submitted) ->
        if not (Hashtbl.mem t.st_jobs s.Jobqueue.sb_id) then begin
          match parse_job_payload s.Jobqueue.sb_payload with
          | None ->
            t.st_cfg.sc_on_warning
              (Printf.sprintf "dropping malformed job %s" s.Jobqueue.sb_id);
            Jobqueue.remove (queue_dir t.st_dir) s.Jobqueue.sb_id
          | Some (a, b, fresh, tests) ->
            let tests = Array.of_list tests in
            let j =
              {
                jb_id = s.Jobqueue.sb_id;
                jb_agent_a = a;
                jb_agent_b = b;
                jb_fresh = fresh;
                jb_tests = tests;
                jb_units =
                  Array.init (Array.length tests) (fun _ ->
                      { us_starts = 0; us_result = None });
                jb_done = false;
              }
            in
            (* Journal first, dequeue second: a crash in between re-offers
               the spool file, which recovery dedups by id. *)
            Journal.append t.st_wal (r_submit j);
            Hashtbl.replace t.st_jobs s.Jobqueue.sb_id j;
            t.st_order <- t.st_order @ [ s.Jobqueue.sb_id ];
            Jobqueue.remove (queue_dir t.st_dir) s.Jobqueue.sb_id
        end)
      (Jobqueue.pending (queue_dir t.st_dir))

let next_unit t =
  List.find_map
    (fun id ->
      match Hashtbl.find_opt t.st_jobs id with
      | Some j when not j.jb_done ->
        let rec find k =
          if k >= Array.length j.jb_units then None
          else if j.jb_units.(k).us_result = None then Some (j, k)
          else find (k + 1)
        in
        find 0
      | _ -> None)
    t.st_order

(* Phase 1 through the store.  Fresh and cached paths both hand the
   crosscheck the exact stored bytes (re-parsed), so a store hit and a
   recomputation feed it bit-identical inputs. *)
let phase1 t ~fresh ~agent_name ~agent ~spec ~scenario =
  let key = phase1_key ~agent:agent_name ~scenario ~max_paths:t.st_cfg.sc_max_paths in
  let cached = if fresh then None else Store.get t.st_store ~key in
  match cached with
  | Some bytes -> bytes
  | None ->
    let run = Harness.Runner.execute ~max_paths:t.st_cfg.sc_max_paths agent spec in
    let bytes = Serialize.to_string (Serialize.of_run run) in
    Store.put t.st_store ~key bytes;
    bytes

let settle t j k result =
  Journal.append t.st_wal (r_verdict j.jb_id k result);
  j.jb_units.(k).us_result <- Some result

let finalize_if_done t j =
  if Array.for_all (fun u -> u.us_result <> None) j.jb_units then begin
    write_report ~fsync:t.st_cfg.sc_fsync t.st_dir j (render_report t.st_store j);
    Journal.append t.st_wal (r_done j.jb_id (job_exit j));
    j.jb_done <- true
  end

let run_unit t j k =
  check_pressure t;
  Journal.append t.st_wal (r_start j.jb_id k);
  j.jb_units.(k).us_starts <- j.jb_units.(k).us_starts + 1;
  let quarantine msg = settle t j k (U_quarantined msg) in
  (match
     ( Harness.Test_spec.by_id j.jb_tests.(k),
       List.assoc_opt j.jb_agent_a t.st_cfg.sc_agents,
       List.assoc_opt j.jb_agent_b t.st_cfg.sc_agents )
   with
   | None, _, _ -> quarantine ("unknown test " ^ j.jb_tests.(k))
   | _, None, _ -> quarantine ("unknown agent " ^ j.jb_agent_a)
   | _, _, None -> quarantine ("unknown agent " ^ j.jb_agent_b)
   | Some spec, Some agent_a, Some agent_b -> (
     let scenario = scenario_hash spec in
     match
       let a_bytes =
         phase1 t ~fresh:j.jb_fresh ~agent_name:j.jb_agent_a ~agent:agent_a ~spec ~scenario
       in
       let b_bytes =
         phase1 t ~fresh:j.jb_fresh ~agent_name:j.jb_agent_b ~agent:agent_b ~spec ~scenario
       in
       let fp_a = hex a_bytes and fp_b = hex b_bytes in
       let key = verdict_key ~fp_a ~fp_b ~scenario in
       match Store.get t.st_store ~key with
       | Some content -> (
         (* Store hit: the whole verdict comes from disk, no solving. *)
         match String.split_on_char ' ' (List.hd (String.split_on_char '\n' content)) with
         | [ "counts"; inc; undec; faults; quar ] ->
           U_verdict
             {
               uv_cached = true;
               uv_inc = int_of_string inc;
               uv_undec = int_of_string undec;
               uv_faults = int_of_string faults;
               uv_quar = int_of_string quar;
               uv_key = key;
             }
         | _ ->
           (* corrupt-reads-as-absent should make this unreachable, but
              degrade to recompute rather than trust a garbled header *)
           failwith "unreadable verdict entry")
       | None ->
         let ga = Grouping.of_saved (Serialize.of_string a_bytes) in
         let gb = Grouping.of_saved (Serialize.of_string b_bytes) in
         let jobs = if t.st_degraded then 1 else t.st_cfg.sc_jobs in
         let o =
           Crosscheck.check ~jobs ?supervise:t.st_cfg.sc_supervise
             ~on_warning:t.st_cfg.sc_on_warning ga gb
         in
         let content =
           Printf.sprintf "counts %d %d %d %d\n%s" (Crosscheck.count o)
             (Crosscheck.undecided_count o) o.Crosscheck.o_pair_faults
             (Crosscheck.quarantined_count o)
             (Crosscheck.render_stable o)
         in
         Store.put t.st_store ~key content;
         U_verdict
           {
             uv_cached = false;
             uv_inc = Crosscheck.count o;
             uv_undec = Crosscheck.undecided_count o;
             uv_faults = o.Crosscheck.o_pair_faults;
             uv_quar = Crosscheck.quarantined_count o;
             uv_key = key;
           }
     with
     | v -> settle t j k v
     | exception (Harness.Chaos.Injected_fault _ as e) ->
       (* a simulated crash: propagate so the process "dies" and comes
          back through recovery — never convert it into a verdict *)
       raise e
     | exception e ->
       (* a deterministic failure (solver bug, malformed store bytes):
          quarantine now instead of crash-looping the daemon on it *)
       let tax, msg = Supervise.classify_exn e in
       quarantine (Supervise.taxonomy_to_string tax ^ ": " ^ msg)));
  finalize_if_done t j

let serve ?(once = false) ?(poll_ms = 200) ?max_units t =
  let remaining = ref (match max_units with Some n -> n | None -> max_int) in
  let running = ref true in
  while !running do
    intake t;
    match next_unit t with
    | Some (j, k) when !remaining > 0 ->
      run_unit t j k;
      decr remaining
    | Some _ -> running := false
    | None ->
      if once then running := false
      else begin
        Unix.sleepf (float_of_int poll_ms /. 1000.0);
        (* piggyback pressure checks on idle ticks so a quiet daemon
           still sheds when a co-tenant bloats the heap *)
        check_pressure t
      end
  done

(* --- status (read-only; works on a live or dead service dir) ---------- *)

type status = {
  ss_jobs : int;
  ss_jobs_done : int;
  ss_units : int;
  ss_units_settled : int;
  ss_units_quarantined : int;
  ss_verdicts_lost : int;
  ss_queue_depth : int;
  ss_store_entries : int;
  ss_wal_records : int;
}

let status dir =
  let store = Store.open_store ~fsync:false (store_dir dir) in
  let rp = replay_records ~store (Journal.replay (wal_path dir)) in
  let jobs_done = ref 0 and units = ref 0 and settled = ref 0 and quar = ref 0 in
  Hashtbl.iter
    (fun _ j ->
      if j.jb_done then incr jobs_done;
      Array.iter
        (fun u ->
          incr units;
          match u.us_result with
          | Some (U_quarantined _) ->
            incr settled;
            incr quar
          | Some _ -> incr settled
          | None -> ())
        j.jb_units)
    rp.rp_jobs;
  {
    ss_jobs = Hashtbl.length rp.rp_jobs;
    ss_jobs_done = !jobs_done;
    ss_units = !units;
    ss_units_settled = !settled;
    ss_units_quarantined = !quar;
    ss_verdicts_lost = rp.rp_lost;
    ss_queue_depth = Jobqueue.depth (queue_dir dir);
    ss_store_entries = Store.size store;
    ss_wal_records = rp.rp_records;
  }

let pp_status fmt s =
  Format.fprintf fmt
    "@[<v>jobs: %d (%d done)@ units: %d (%d settled, %d quarantined, lost %d)@ queue depth: %d@ store entries: %d@ wal records: %d@]"
    s.ss_jobs s.ss_jobs_done s.ss_units s.ss_units_settled s.ss_units_quarantined
    s.ss_verdicts_lost s.ss_queue_depth s.ss_store_entries s.ss_wal_records

let report dir id =
  let path = report_path dir id in
  if Sys.file_exists path then Some (In_channel.with_open_bin path In_channel.input_all)
  else None
