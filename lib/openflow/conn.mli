(** Live-wire OpenFlow 1.0 connections.

    A framed, deadline-bounded connection to a real peer process over TCP
    or a Unix-domain socket.  Everything a misbehaving peer can do —
    truncate a frame, send garbage, flood, reset the socket, go silent —
    is contained as {!Peer_fault} or {!Timeout}; no network event may
    escape as an uncaught exception or an unbounded wait.

    Framing is incremental header-length framing: bytes accumulate in a
    bounded receive buffer until the 8-byte OpenFlow header is complete,
    the header's length field then bounds the frame, and the frame is
    surfaced once all its bytes arrived.  Partial reads at any boundary
    are fine; a length field below the header size, a receive buffer
    overrun, or bytes that fail {!Wire.parse} are peer faults.

    The module sits below the harness, so it cannot draw
    {!Harness.Chaos} points itself; the soft layer bridges them through
    {!set_fault_hook}.  A firing fault is surfaced as the transport
    failure it models (torn frame → peer fault, reset → peer fault,
    stall → timeout) — never as an abort. *)

exception Peer_fault of string
(** The peer misbehaved: malformed or runt frame, receive-buffer overrun,
    connection reset, or EOF mid-frame.  Always contained — the
    connection is dead but the process is fine. *)

exception Timeout of string
(** A per-state deadline expired: the peer is silent, not wrong. *)

(** {1 Addresses} *)

type addr = Tcp of string * int | Unix_sock of string

val addr_of_string : string -> addr
(** ["unix:PATH"] or a bare path containing ['/'] is a Unix-domain
    socket; ["HOST:PORT"] is TCP.
    @raise Invalid_argument on anything else. *)

val pp_addr : Format.formatter -> addr -> unit

(** {1 Fault injection bridge} *)

type fault = F_torn_frame | F_conn_reset | F_read_stall

val set_fault_hook : (fault -> bool) -> unit
(** Install the chaos bridge: the hook is drawn once per send ([torn
    frame], [reset]) and once per receive ([reset], [stall]).  The soft
    layer wires it to {!Harness.Chaos.fires} on the transport points; the
    default hook never fires. *)

(** {1 Connections} *)

type t

val connect : ?timeout_ms:int -> addr -> t
(** One connection attempt; the socket is non-blocking from birth.
    @raise Timeout if the connect does not complete in time
    @raise Peer_fault if the peer refuses or the address is dead. *)

val connect_backoff :
  ?attempts:int -> ?base_ms:int -> ?cap_ms:int -> ?key:int -> addr -> t
(** [connect] with a capped-exponential retry ladder: attempt [n] sleeps
    [min cap_ms (base_ms * 2^n)] scaled by a deterministic jitter factor
    in [[0.5, 1.0]] drawn from a stream seeded by [(key, n)] — the same
    discipline as the {!Harness.Supervise} retry ladder, so two runs with
    the same key reconnect on the same schedule.  Raises the final
    attempt's failure. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind-and-listen on [addr] (an existing Unix-socket path is
    unlinked first).  The soft layer's loopback switch serves on this. *)

val accept : ?deadline_ms:int -> Unix.file_descr -> t
(** Accept one peer as a connection.
    @raise Timeout if nobody connects in time. *)

val close : t -> unit
(** Idempotent. *)

val is_open : t -> bool

val descr : t -> string
(** Human-readable peer description for error messages. *)

(** {1 Framed I/O} *)

val max_frame : int
(** Largest frame accepted (the u16 length field's ceiling). *)

val send_frame : ?deadline_ms:int -> t -> string -> unit
(** Write pre-serialized frame bytes, honouring partial writes.
    @raise Peer_fault on reset/EOF  @raise Timeout past the deadline. *)

val send_msg : ?deadline_ms:int -> t -> Types.msg -> unit
(** [send_frame] of {!Wire.serialize}. *)

val recv_frame : ?deadline_ms:int -> t -> string
(** The next complete frame's raw bytes (header included). *)

val recv_msg : ?deadline_ms:int -> t -> Types.msg
(** [recv_frame] parsed; a {!Wire.Parse_error} is a {!Peer_fault}. *)

(** {1 Handshake and liveness} *)

val handshake_controller : ?deadline_ms:int -> t -> Types.switch_features
(** Controller-side state machine, one deadline per state:
    send hello → await hello → send features-request → await
    features-reply.  Any other message type in a state is a
    {!Peer_fault} (echo requests are answered transparently). *)

val handshake_switch :
  ?deadline_ms:int -> ?features:Types.switch_features -> t -> unit
(** Switch-side mirror: send hello → await hello, then answer the
    features request.  [features] defaults to a minimal single-table
    software switch. *)

val ping : ?deadline_ms:int -> t -> unit
(** Echo-request keepalive: sends a nonce payload and requires the
    matching echo-reply.  A wrong payload or message type is a
    {!Peer_fault}; silence is a {!Timeout}.  Only valid between
    request/response exchanges (no other traffic may be in flight). *)
