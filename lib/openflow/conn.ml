(* Live-wire OpenFlow 1.0 connections: bounded framing over non-blocking
   sockets.  See conn.mli for the containment contract.

   Everything here is select-driven against wall-clock deadlines: a
   socket operation either completes, raises [Timeout] when its deadline
   passes, or raises [Peer_fault] when the peer does something a correct
   OpenFlow endpoint cannot.  There is no code path that blocks without a
   deadline and none that lets a Unix or parse exception escape raw. *)

exception Peer_fault of string
exception Timeout of string

type addr = Tcp of string * int | Unix_sock of string

let addr_of_string s =
  match String.index_opt s ':' with
  | Some 4 when String.length s > 5 && String.sub s 0 5 = "unix:" ->
    Unix_sock (String.sub s 5 (String.length s - 5))
  | Some i when not (String.contains s '/') ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p > 0 && p < 0x10000 && host <> "" -> Tcp (host, p)
     | _ -> invalid_arg (Printf.sprintf "Conn.addr_of_string: bad port in %S" s))
  | _ ->
    if String.contains s '/' then Unix_sock s
    else invalid_arg (Printf.sprintf "Conn.addr_of_string: %S (want unix:PATH or HOST:PORT)" s)

let pp_addr fmt = function
  | Tcp (h, p) -> Format.fprintf fmt "%s:%d" h p
  | Unix_sock p -> Format.fprintf fmt "unix:%s" p

let addr_descr a = Format.asprintf "%a" pp_addr a

type fault = F_torn_frame | F_conn_reset | F_read_stall

let fault_hook : (fault -> bool) ref = ref (fun _ -> false)
let set_fault_hook f = fault_hook := f

type t = {
  c_fd : Unix.file_descr;
  c_descr : string;
  c_buf : Buffer.t; (* bytes received but not yet surfaced as a frame *)
  mutable c_open : bool;
  mutable c_nonce : int; (* ping payload counter *)
}

let descr c = c.c_descr
let is_open c = c.c_open

let close c =
  if c.c_open then begin
    c.c_open <- false;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* The u16 length field bounds any single frame; the receive buffer may
   additionally hold the tail of the read that completed a frame, so cap
   it at two frames before declaring the peer a flooder. *)
let max_frame = 0xffff
let max_buffered = 2 * max_frame

let header_len = 8
let default_deadline_ms = 5000

let peer_fault c fmt =
  Printf.ksprintf
    (fun msg ->
      close c;
      raise (Peer_fault (Printf.sprintf "%s: %s" c.c_descr msg)))
    fmt

let deadline_of ms = Unix.gettimeofday () +. (float_of_int ms /. 1000.0)

let remaining deadline what =
  let r = deadline -. Unix.gettimeofday () in
  if r <= 0.0 then raise (Timeout what) else r

(* Ignore SIGPIPE once so a write to a reset socket surfaces as EPIPE —
   a classifiable peer fault — instead of killing the process. *)
let sigpipe_ignored = lazy (
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let sockaddr_of = function
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ ->
        (try Unix.inet_addr_of_string host
         with Failure _ -> raise (Peer_fault (Printf.sprintf "cannot resolve host %S" host)))
    in
    Unix.ADDR_INET (ip, port)
  | Unix_sock path -> Unix.ADDR_UNIX path

let mk_conn fd d =
  { c_fd = fd; c_descr = d; c_buf = Buffer.create 256; c_open = true; c_nonce = 0 }

let connect ?(timeout_ms = default_deadline_ms) addr =
  Lazy.force sigpipe_ignored;
  let sa = sockaddr_of addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise (Peer_fault (Printf.sprintf "connect %s: %s" (addr_descr addr) msg)))
      fmt
  in
  Unix.set_nonblock fd;
  (try Unix.connect fd sa with
   | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
     (* Completion is signalled by writability; the deadline bounds it. *)
     let deadline = deadline_of timeout_ms in
     let rec wait () =
       let r =
         try remaining deadline "connect"
         with Timeout _ ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise (Timeout (Printf.sprintf "connect %s: deadline expired" (addr_descr addr)))
       in
       match Unix.select [] [ fd ] [] r with
       | _, [ _ ], _ ->
         (match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> fail "%s" (Unix.error_message e))
       | _ -> wait ()
     in
     wait ()
   | Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
  mk_conn fd (addr_descr addr)

(* Capped exponential backoff with deterministic jitter, the same
   discipline as Supervise.run_retrying: the jitter factor for attempt
   [n] comes from a stream seeded by [(key, n)], so a given key replays
   the exact same reconnect schedule. *)
let connect_backoff ?(attempts = 4) ?(base_ms = 50) ?(cap_ms = 2000) ?(key = 0) addr =
  let attempts = max 1 attempts in
  let rec go n =
    try connect addr
    with (Peer_fault _ | Timeout _) as e ->
      if n + 1 >= attempts then raise e
      else begin
        let expo = min cap_ms (base_ms * (1 lsl min n 20)) in
        let st = Random.State.make [| 0xc0de; key; n |] in
        let jitter = 0.5 +. Random.State.float st 0.5 in
        Unix.sleepf (float_of_int expo *. jitter /. 1000.0);
        go (n + 1)
      end
  in
  go 0

let listen ?(backlog = 8) addr =
  Lazy.force sigpipe_ignored;
  (match addr with
   | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | Tcp _ -> ());
  let sa = sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd sa;
  Unix.listen fd backlog;
  fd

let accept ?(deadline_ms = default_deadline_ms) lfd =
  let deadline = deadline_of deadline_ms in
  let rec wait () =
    let r = remaining deadline "accept: deadline expired" in
    match Unix.select [ lfd ] [] [] r with
    | [ _ ], _, _ ->
      let fd, peer = Unix.accept lfd in
      Unix.set_nonblock fd;
      let d =
        match peer with
        | Unix.ADDR_UNIX p -> if p = "" then "unix-peer" else p
        | Unix.ADDR_INET (ip, port) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
      in
      mk_conn fd d
    | _ -> wait ()
  in
  wait ()

(* --- framed send ------------------------------------------------------ *)

let write_all c deadline buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let r = remaining deadline (c.c_descr ^ ": send deadline expired") in
    match Unix.select [] [ c.c_fd ] [] r with
    | _, [ _ ], _ ->
      (match Unix.write_substring c.c_fd buf !off !len with
       | 0 -> peer_fault c "peer closed mid-send"
       | n ->
         off := !off + n;
         len := !len - n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
       | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
         peer_fault c "connection reset by peer"
       | exception Unix.Unix_error (e, _, _) ->
         peer_fault c "send failed: %s" (Unix.error_message e))
    | _ -> ()
  done

let send_frame ?(deadline_ms = default_deadline_ms) c frame =
  if not c.c_open then raise (Peer_fault (c.c_descr ^ ": connection already closed"));
  if String.length frame > max_frame then
    invalid_arg "Conn.send_frame: frame exceeds the wire's length field";
  let deadline = deadline_of deadline_ms in
  if !fault_hook F_torn_frame then begin
    (* Write a strict prefix, then lose the socket: the peer sees a
       truncated frame and EOF, we see a dead connection. *)
    let cut = max 1 (String.length frame / 2) in
    (try write_all c deadline frame 0 cut with Peer_fault _ | Timeout _ -> ());
    peer_fault c "chaos: frame torn mid-send"
  end;
  if !fault_hook F_conn_reset then peer_fault c "chaos: connection reset";
  write_all c deadline frame 0 (String.length frame)

let send_msg ?deadline_ms c msg = send_frame ?deadline_ms c (Wire.serialize msg)

(* --- framed receive --------------------------------------------------- *)

(* Incremental header-length framing.  [c_buf] accumulates raw bytes;
   once the 8-byte header is in, its big-endian length field bounds the
   frame; once the frame is in, it is split off and any tail bytes stay
   buffered for the next call.  Partial reads may stop at any byte
   boundary — including inside the header. *)

let frame_len_of_header buf =
  (Char.code (Buffer.nth buf 2) lsl 8) lor Char.code (Buffer.nth buf 3)

let take_frame c =
  let have = Buffer.length c.c_buf in
  if have < header_len then None
  else begin
    let flen = frame_len_of_header c.c_buf in
    if flen < header_len then
      peer_fault c "runt frame: header says %d bytes (min %d)" flen header_len;
    if have < flen then None
    else begin
      let frame = Buffer.sub c.c_buf 0 flen in
      let rest = Buffer.sub c.c_buf flen (have - flen) in
      Buffer.clear c.c_buf;
      Buffer.add_string c.c_buf rest;
      Some frame
    end
  end

let recv_frame ?(deadline_ms = default_deadline_ms) c =
  if not c.c_open then raise (Peer_fault (c.c_descr ^ ": connection already closed"));
  if !fault_hook F_read_stall then
    raise (Timeout (c.c_descr ^ ": chaos: read stalled past deadline"));
  if !fault_hook F_conn_reset then peer_fault c "chaos: connection reset";
  let deadline = deadline_of deadline_ms in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match take_frame c with
    | Some frame -> frame
    | None ->
      if Buffer.length c.c_buf > max_buffered then
        peer_fault c "receive buffer overrun (%d bytes without a complete frame)"
          (Buffer.length c.c_buf);
      let r = remaining deadline (c.c_descr ^ ": recv deadline expired") in
      (match Unix.select [ c.c_fd ] [] [] r with
       | [ _ ], _, _ ->
         (match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
          | 0 -> peer_fault c "peer closed the connection mid-frame"
          | n ->
            Buffer.add_subbytes c.c_buf chunk 0 n;
            loop ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            loop ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
            peer_fault c "connection reset by peer"
          | exception Unix.Unix_error (e, _, _) ->
            peer_fault c "recv failed: %s" (Unix.error_message e))
       | _ -> loop ())
  in
  loop ()

let recv_msg ?deadline_ms c =
  let frame = recv_frame ?deadline_ms c in
  try Wire.parse frame
  with Wire.Parse_error m -> peer_fault c "malformed frame: %s" m

(* --- handshake and liveness ------------------------------------------- *)

let msg payload = { Types.xid = 0x50f70000l; payload }

let default_features =
  {
    Types.datapath_id = 0x50f7L;
    n_buffers = 0l;
    n_tables = 1;
    capabilities = 0l;
    supported_actions = 0l;
    ports = [];
  }

(* Await a message for which [want] is [Some _], answering echo requests
   transparently (keepalives may race the handshake) and faulting on
   anything else: each handshake state accepts exactly one message type. *)
let rec await_msg ?deadline_ms c state want =
  let m = recv_msg ?deadline_ms c in
  match want m.Types.payload with
  | Some v -> v
  | None ->
    (match m.Types.payload with
     | Types.Echo_request p ->
       send_msg ?deadline_ms c { m with Types.payload = Types.Echo_reply p };
       await_msg ?deadline_ms c state want
     | other ->
       peer_fault c "handshake (%s): unexpected message type %d" state
         (Types.msg_type_of_message other))

let handshake_controller ?deadline_ms c =
  send_msg ?deadline_ms c (msg Types.Hello);
  (await_msg ?deadline_ms c "await hello" (function
     | Types.Hello -> Some ()
     | _ -> None)
    : unit);
  send_msg ?deadline_ms c (msg Types.Features_request);
  await_msg ?deadline_ms c "await features-reply" (function
    | Types.Features_reply f -> Some f
    | _ -> None)

let handshake_switch ?deadline_ms ?(features = default_features) c =
  send_msg ?deadline_ms c (msg Types.Hello);
  (await_msg ?deadline_ms c "await hello" (function
     | Types.Hello -> Some ()
     | _ -> None)
    : unit);
  (await_msg ?deadline_ms c "await features-request" (function
     | Types.Features_request -> Some ()
     | _ -> None)
    : unit);
  send_msg ?deadline_ms c (msg (Types.Features_reply features))

let ping ?deadline_ms c =
  c.c_nonce <- c.c_nonce + 1;
  let payload = Printf.sprintf "soft-ping-%d" c.c_nonce in
  send_msg ?deadline_ms c (msg (Types.Echo_request payload));
  let got =
    await_msg ?deadline_ms c "await echo-reply" (function
      | Types.Echo_reply p -> Some p
      | _ -> None)
  in
  if got <> payload then
    peer_fault c "echo-reply payload mismatch (sent %S, got %S)" payload got
