(** Symbolic OpenFlow 1.0 messages, built the way SOFT structures inputs
    (paper §3.2.1): structure concrete — message type (usually), claimed
    length (usually), number and wire length of actions — while field
    contents are symbolic variables.

    Action bodies are raw symbolic bytes reinterpreted per action type by
    the agents, because the action type itself is symbolic in the Packet
    Out and Flow Mod tests; this reproduces real parsing aliasing (the same
    wire bytes are a port for OUTPUT and a VLAN id for SET_VLAN_VID).

    {!to_sym_bytes} lays a message out as symbolic wire bytes; evaluating
    them under a solver model yields the concrete reproducer for an
    inconsistency. *)

open Smt

type sbv = Expr.bv

(** {1 Actions} *)

type saction = {
  a_type : sbv;  (** 16 bits; possibly symbolic *)
  a_len : sbv;  (** 16 bits; concrete under the input structuring *)
  a_body : sbv array;  (** one 8-bit expression per body byte *)
}

val body_u8 : saction -> int -> sbv
val body_u16 : saction -> int -> sbv
(** Big-endian views over the body bytes at a byte offset. *)

val body_u32 : saction -> int -> sbv
val body_mac : saction -> int -> sbv
val action_phys_len : saction -> int

val sym_action : prefix:string -> ?len:int -> unit -> saction
(** Fully symbolic action: symbolic type, concrete wire length [len]
    (default 8), symbolic body bytes named under [prefix]. *)

val sym_output_action : prefix:string -> unit -> saction
(** OUTPUT action with symbolic port and max_len. *)

val of_action : Types.action -> saction
(** Embed a concrete action (used by concrete messages in sequences). *)

val bytes_of_value : sbv -> int -> sbv array
(** Split a value into its big-endian bytes. *)

(** {1 Matches} *)

type smatch = {
  s_wildcards : sbv;  (** 32 *)
  s_in_port : sbv;  (** 16 *)
  s_dl_src : sbv;  (** 48 *)
  s_dl_dst : sbv;  (** 48 *)
  s_dl_vlan : sbv;  (** 16 *)
  s_dl_vlan_pcp : sbv;  (** 8 *)
  s_dl_type : sbv;  (** 16 *)
  s_nw_tos : sbv;  (** 8 *)
  s_nw_proto : sbv;  (** 8 *)
  s_nw_src : sbv;  (** 32 *)
  s_nw_dst : sbv;  (** 32 *)
  s_tp_src : sbv;  (** 16 *)
  s_tp_dst : sbv;  (** 16 *)
}

val sym_match : prefix:string -> unit -> smatch
(** Every field and the wildcard bits symbolic. *)

val sym_match_eth : prefix:string -> unit -> smatch
(** Only Ethernet-related fields symbolic; network/transport fields are
    concretized and forced fully wildcarded (the Eth FlowMod test). *)

val of_match : Types.of_match -> smatch
val wildcard_match : unit -> smatch

(** {1 Message bodies} *)

type spacket_out = {
  spo_buffer_id : sbv;  (** 32 *)
  spo_in_port : sbv;  (** 16 *)
  spo_actions : saction list;
  spo_data : Packet.Sym_packet.t option;
}

type sflow_mod = {
  sfm_match : smatch;
  sfm_cookie : sbv;  (** 64 *)
  sfm_command : sbv;  (** 16 *)
  sfm_idle_timeout : sbv;  (** 16 *)
  sfm_hard_timeout : sbv;  (** 16 *)
  sfm_priority : sbv;  (** 16 *)
  sfm_buffer_id : sbv;  (** 32 *)
  sfm_out_port : sbv;  (** 16 *)
  sfm_flags : sbv;  (** 16 *)
  sfm_actions : saction list;
}

type sswitch_config = { scfg_flags : sbv; smiss_send_len : sbv }

type sstats_request = {
  ssr_type : sbv;  (** 16; symbolic in the Stats Request test *)
  ssr_flags : sbv;
  ssr_match : smatch;  (** flow/aggregate view *)
  ssr_table_id : sbv;  (** 8 *)
  ssr_out_port : sbv;
  ssr_port_no : sbv;  (** port view *)
  ssr_queue_port : sbv;  (** queue view *)
  ssr_queue_id : sbv;  (** 32 *)
}

type sbody =
  | SHello
  | SEcho_request of sbv array
  | SFeatures_request
  | SGet_config_request
  | SSet_config of sswitch_config
  | SPacket_out of spacket_out
  | SFlow_mod of sflow_mod
  | SStats_request of sstats_request
  | SBarrier_request
  | SQueue_get_config_request of { sqgc_port : sbv }
  | SVendor of { sv_vendor : sbv }
  | SRaw of sbv array  (** uninterpreted body bytes (Short Symb) *)

type t = {
  sm_type : sbv;  (** 8; symbolic only in Short Symb *)
  sm_length : sbv;  (** 16; the *claimed* length *)
  sm_phys_len : int;  (** bytes actually delivered on the wire *)
  sm_xid : sbv;  (** 32 *)
  sm_body : sbody;
}

(** {1 Builders} *)

val make : ?xid:sbv -> int -> sbody -> t
(** Concrete type and claimed length equal to the physical length — the
    standard input structuring. *)

val packet_out : ?xid:sbv -> spacket_out -> t
val flow_mod : ?xid:sbv -> sflow_mod -> t
val set_config : ?xid:sbv -> sswitch_config -> t
val barrier_request : ?xid:sbv -> unit -> t
val hello : ?xid:sbv -> unit -> t
val echo_request : ?xid:sbv -> sbv array -> t
val features_request : ?xid:sbv -> unit -> t
val get_config_request : ?xid:sbv -> unit -> t
val queue_get_config_request : ?xid:sbv -> sbv -> t

val sym_stats_request : prefix:string -> unit -> t
(** Stats type and claimed length symbolic; physical body sized for the
    largest request — covers all statistics subtypes. *)

val short_symbolic : prefix:string -> unit -> t
(** The Short Symb test: a 10-byte message where only the version is
    concrete. *)

val body_phys_len : sbody -> int
val actions_phys_len : saction list -> int

(** {1 Wire layout} *)

val to_sym_bytes : t -> sbv array
(** The message as symbolic wire bytes, header included. *)

val concretize_wire : Model.t -> t -> string
(** Evaluate the wire bytes under a model: the concrete reproducer. *)

exception Of_wire_error of string

val of_wire : string -> t
(** Lenient inverse of {!to_sym_bytes} over concrete reproducer bytes:
    every field comes back as a constant, [sm_length] is the header's
    {e claimed} length, [sm_phys_len] the actual byte count — the two may
    disagree, exactly as the witness intended.  A body that does not fit
    its type's structured layout decodes to [SRaw], matching what the
    agents' raw-fallback path dispatches on in process.  A stats
    request's port/queue-view fields are resolved from the wire bytes
    they alias (a real switch cannot see the independent variables the
    symbolic form carries); see the implementation note.  The live switch
    server uses this to rebuild the structured input a replay drives.
    @raise Of_wire_error when shorter than a header. *)
