(* Symbolic OpenFlow messages, built the way SOFT structures inputs
   (paper §3.2.1): structure concrete — message type (usually), claimed
   length (usually), number and wire length of actions — while field
   *contents* are symbolic bitvector variables.

   Action bodies are raw symbolic bytes reinterpreted per action type by
   the agents, because the action type itself is symbolic in the Packet Out
   and Flow Mod tests; this reproduces the real parsing aliasing (the same
   wire bytes are a port for OUTPUT and a VLAN id for SET_VLAN_VID).

   [to_sym_bytes] lays a message out as symbolic wire bytes; evaluating
   those bytes under a solver model yields the concrete reproducer test
   case for an inconsistency. *)

open Smt
module C = Constants

type sbv = Expr.bv

let c8 v = Expr.const ~width:8 (Int64.of_int v)
let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)
let c32l v = Expr.const ~width:32 (Int64.logand (Int64.of_int32 v) 0xffffffffL)
let c48 v = Expr.const ~width:48 v
let v8 n = Expr.var ~width:8 n
let v16 n = Expr.var ~width:16 n
let v32 n = Expr.var ~width:32 n
let v48 n = Expr.var ~width:48 n

(* --- actions ----------------------------------------------------------- *)

type saction = {
  a_type : sbv; (* 16 *)
  a_len : sbv; (* 16; concrete under input structuring *)
  a_body : sbv array; (* 8-bit each; length = wire length - 4 *)
}

(* big-endian field views over the body bytes *)
let body_u8 (a : saction) off = a.a_body.(off)

let body_u16 (a : saction) off = Expr.concat a.a_body.(off) a.a_body.(off + 1)

let body_u32 (a : saction) off =
  Expr.concat (body_u16 a off) (body_u16 a (off + 2))

let body_mac (a : saction) off =
  let rec go i acc = if i >= 6 then acc else go (i + 1) (Expr.concat acc a.a_body.(off + i)) in
  go 1 a.a_body.(off)

let action_phys_len (a : saction) = 4 + Array.length a.a_body

(* Fully symbolic action: symbolic type, concrete length [len] (8 or 16),
   symbolic body bytes. *)
let sym_action ~prefix ?(len = 8) () =
  {
    a_type = v16 (prefix ^ ".type");
    a_len = c16 len;
    a_body = Array.init (len - 4) (fun i -> v8 (Printf.sprintf "%s.b%d" prefix i));
  }

(* Symbolic OUTPUT action: concrete type, symbolic port and max_len. *)
let sym_output_action ~prefix () =
  {
    a_type = c16 C.Action_type.output;
    a_len = c16 8;
    a_body =
      (let port = v16 (prefix ^ ".port") and max_len = v16 (prefix ^ ".max_len") in
       let b e i = Expr.extract ~hi:(8 * i + 7) ~lo:(8 * i) e in
       [| b port 1; b port 0; b max_len 1; b max_len 0 |]);
  }

let bytes_of_value e nbytes =
  Array.init nbytes (fun i ->
      let msb_index = nbytes - 1 - i in
      Expr.extract ~hi:(8 * msb_index + 7) ~lo:(8 * msb_index) e)

(* Concrete action -> symbolic representation (used for concrete messages
   in sequences such as CS FlowMods). *)
let of_action (a : Types.action) =
  let mk typ len fields =
    let body = Array.concat fields in
    assert (Array.length body = len - 4);
    { a_type = c16 typ; a_len = c16 len; a_body = body }
  in
  match a with
  | Types.Output { port; max_len } ->
    mk C.Action_type.output 8 [ bytes_of_value (c16 port) 2; bytes_of_value (c16 max_len) 2 ]
  | Types.Set_vlan_vid vid ->
    mk C.Action_type.set_vlan_vid 8 [ bytes_of_value (c16 vid) 2; bytes_of_value (c16 0) 2 ]
  | Types.Set_vlan_pcp pcp ->
    mk C.Action_type.set_vlan_pcp 8 [ bytes_of_value (c8 pcp) 1; bytes_of_value (c32 0) 3 ]
  | Types.Strip_vlan -> mk C.Action_type.strip_vlan 8 [ bytes_of_value (c32 0) 4 ]
  | Types.Set_dl_src m ->
    mk C.Action_type.set_dl_src 16 [ bytes_of_value (c48 m) 6; bytes_of_value (c48 0L) 6 ]
  | Types.Set_dl_dst m ->
    mk C.Action_type.set_dl_dst 16 [ bytes_of_value (c48 m) 6; bytes_of_value (c48 0L) 6 ]
  | Types.Set_nw_src a -> mk C.Action_type.set_nw_src 8 [ bytes_of_value (c32l a) 4 ]
  | Types.Set_nw_dst a -> mk C.Action_type.set_nw_dst 8 [ bytes_of_value (c32l a) 4 ]
  | Types.Set_nw_tos t ->
    mk C.Action_type.set_nw_tos 8 [ bytes_of_value (c8 t) 1; bytes_of_value (c8 0) 1; bytes_of_value (c16 0) 2 ]
  | Types.Set_tp_src p ->
    mk C.Action_type.set_tp_src 8 [ bytes_of_value (c16 p) 2; bytes_of_value (c16 0) 2 ]
  | Types.Set_tp_dst p ->
    mk C.Action_type.set_tp_dst 8 [ bytes_of_value (c16 p) 2; bytes_of_value (c16 0) 2 ]
  | Types.Enqueue { port; queue_id } ->
    mk C.Action_type.enqueue 16
      [ bytes_of_value (c16 port) 2; bytes_of_value (c48 0L) 6; bytes_of_value (c32l queue_id) 4 ]
  | Types.Vendor_action { vendor; body } ->
    let blen = String.length body in
    mk C.Action_type.vendor (8 + blen)
      [ bytes_of_value (c32l vendor) 4;
        Array.init blen (fun i -> c8 (Char.code body.[i])) ]
  | Types.Unknown_action { typ; len; body } ->
    mk typ len [ Array.init (String.length body) (fun i -> c8 (Char.code body.[i])) ]

(* --- match -------------------------------------------------------------- *)

type smatch = {
  s_wildcards : sbv; (* 32 *)
  s_in_port : sbv; (* 16 *)
  s_dl_src : sbv; (* 48 *)
  s_dl_dst : sbv; (* 48 *)
  s_dl_vlan : sbv; (* 16 *)
  s_dl_vlan_pcp : sbv; (* 8 *)
  s_dl_type : sbv; (* 16 *)
  s_nw_tos : sbv; (* 8 *)
  s_nw_proto : sbv; (* 8 *)
  s_nw_src : sbv; (* 32 *)
  s_nw_dst : sbv; (* 32 *)
  s_tp_src : sbv; (* 16 *)
  s_tp_dst : sbv; (* 16 *)
}

let sym_match ~prefix () =
  let f n = prefix ^ "." ^ n in
  {
    s_wildcards = v32 (f "wildcards");
    s_in_port = v16 (f "in_port");
    s_dl_src = v48 (f "dl_src");
    s_dl_dst = v48 (f "dl_dst");
    s_dl_vlan = v16 (f "dl_vlan");
    s_dl_vlan_pcp = v8 (f "dl_vlan_pcp");
    s_dl_type = v16 (f "dl_type");
    s_nw_tos = v8 (f "nw_tos");
    s_nw_proto = v8 (f "nw_proto");
    s_nw_src = v32 (f "nw_src");
    s_nw_dst = v32 (f "nw_dst");
    s_tp_src = v16 (f "tp_src");
    s_tp_dst = v16 (f "tp_dst");
  }

(* Ethernet-focused symbolic match: only L2-related fields (and their
   wildcard bits) are symbolic; network/transport fields are concretized
   and forced to fully-wildcarded (Eth FlowMod test, Table 1). *)
let sym_match_eth ~prefix () =
  let f n = prefix ^ "." ^ n in
  let eth_bits =
    C.Wildcards.(in_port lor dl_vlan lor dl_src lor dl_dst lor dl_type lor dl_vlan_pcp)
  in
  let non_eth_all =
    C.Wildcards.(
      nw_proto lor tp_src lor tp_dst lor nw_tos lor nw_src_all lor nw_dst_all)
  in
  {
    s_wildcards =
      Expr.logor
        (Expr.logand (v32 (f "wildcards")) (c32 eth_bits))
        (c32 non_eth_all);
    s_in_port = v16 (f "in_port");
    s_dl_src = v48 (f "dl_src");
    s_dl_dst = v48 (f "dl_dst");
    s_dl_vlan = v16 (f "dl_vlan");
    s_dl_vlan_pcp = v8 (f "dl_vlan_pcp");
    s_dl_type = v16 (f "dl_type");
    s_nw_tos = c8 0;
    s_nw_proto = c8 0;
    s_nw_src = c32 0;
    s_nw_dst = c32 0;
    s_tp_src = c16 0;
    s_tp_dst = c16 0;
  }

(* Fully-wildcarded concrete match. *)
let match_any = ref None

let of_match (m : Types.of_match) =
  {
    s_wildcards = c32l m.wildcards;
    s_in_port = c16 m.in_port;
    s_dl_src = c48 m.dl_src;
    s_dl_dst = c48 m.dl_dst;
    s_dl_vlan = c16 m.dl_vlan;
    s_dl_vlan_pcp = c8 m.dl_vlan_pcp;
    s_dl_type = c16 m.dl_type;
    s_nw_tos = c8 m.nw_tos;
    s_nw_proto = c8 m.nw_proto;
    s_nw_src = c32l m.nw_src;
    s_nw_dst = c32l m.nw_dst;
    s_tp_src = c16 m.tp_src;
    s_tp_dst = c16 m.tp_dst;
  }

let wildcard_match () =
  match !match_any with
  | Some m -> m
  | None ->
    let m = of_match Types.match_all in
    match_any := Some m;
    m

(* --- message bodies ------------------------------------------------------ *)

type spacket_out = {
  spo_buffer_id : sbv; (* 32 *)
  spo_in_port : sbv; (* 16 *)
  spo_actions : saction list;
  spo_data : Packet.Sym_packet.t option; (* packet to send if buffer_id = -1 *)
}

type sflow_mod = {
  sfm_match : smatch;
  sfm_cookie : sbv; (* 64 *)
  sfm_command : sbv; (* 16 *)
  sfm_idle_timeout : sbv; (* 16 *)
  sfm_hard_timeout : sbv; (* 16 *)
  sfm_priority : sbv; (* 16 *)
  sfm_buffer_id : sbv; (* 32 *)
  sfm_out_port : sbv; (* 16 *)
  sfm_flags : sbv; (* 16 *)
  sfm_actions : saction list;
}

type sswitch_config = { scfg_flags : sbv; smiss_send_len : sbv } (* 16 each *)

type sstats_request = {
  ssr_type : sbv; (* 16 *)
  ssr_flags : sbv; (* 16 *)
  (* flow / aggregate view *)
  ssr_match : smatch;
  ssr_table_id : sbv; (* 8 *)
  ssr_out_port : sbv; (* 16 *)
  (* port view *)
  ssr_port_no : sbv; (* 16 *)
  (* queue view *)
  ssr_queue_port : sbv; (* 16 *)
  ssr_queue_id : sbv; (* 32 *)
}

type sbody =
  | SHello
  | SEcho_request of sbv array
  | SFeatures_request
  | SGet_config_request
  | SSet_config of sswitch_config
  | SPacket_out of spacket_out
  | SFlow_mod of sflow_mod
  | SStats_request of sstats_request
  | SBarrier_request
  | SQueue_get_config_request of { sqgc_port : sbv (* 16 *) }
  | SVendor of { sv_vendor : sbv (* 32 *) }
  | SRaw of sbv array (* uninterpreted body bytes *)

type t = {
  sm_type : sbv; (* 8; concrete under input structuring, symbolic in Short Symb *)
  sm_length : sbv; (* 16; the *claimed* length *)
  sm_phys_len : int; (* bytes actually delivered on the wire *)
  sm_xid : sbv; (* 32 *)
  sm_body : sbody;
}

let actions_phys_len actions =
  List.fold_left (fun acc a -> acc + action_phys_len a) 0 actions

let body_phys_len = function
  | SHello | SFeatures_request | SGet_config_request | SBarrier_request -> 0
  | SEcho_request bytes -> Array.length bytes
  | SSet_config _ -> 4
  | SPacket_out { spo_actions; spo_data; _ } ->
    8 + actions_phys_len spo_actions + (match spo_data with Some _ -> 64 | None -> 0)
  | SFlow_mod { sfm_actions; _ } -> 64 + actions_phys_len sfm_actions
  | SStats_request _ -> 4 + 44 (* header fields + largest body (flow stats request) *)
  | SQueue_get_config_request _ -> 4
  | SVendor _ -> 4
  | SRaw bytes -> Array.length bytes

(* Build a message with concrete type and correct concrete length — the
   standard input structuring. *)
let make ?xid typ body =
  let phys = C.Sizes.header + body_phys_len body in
  {
    sm_type = c8 typ;
    sm_length = c16 phys;
    sm_phys_len = phys;
    sm_xid = (match xid with Some x -> x | None -> c32 0x5057);
    sm_body = body;
  }

let packet_out ?xid po = make ?xid C.Msg_type.packet_out (SPacket_out po)
let flow_mod ?xid fm = make ?xid C.Msg_type.flow_mod (SFlow_mod fm)
let set_config ?xid sc = make ?xid C.Msg_type.set_config (SSet_config sc)
let barrier_request ?xid () = make ?xid C.Msg_type.barrier_request SBarrier_request
let hello ?xid () = make ?xid C.Msg_type.hello SHello
let echo_request ?xid payload = make ?xid C.Msg_type.echo_request (SEcho_request payload)
let features_request ?xid () = make ?xid C.Msg_type.features_request SFeatures_request
let get_config_request ?xid () = make ?xid C.Msg_type.get_config_request SGet_config_request

let queue_get_config_request ?xid port =
  make ?xid C.Msg_type.queue_get_config_request (SQueue_get_config_request { sqgc_port = port })

(* Symbolic stats request covering all subtypes: the stats type and the
   claimed message length are symbolic, the physical body is the largest
   request body. *)
let sym_stats_request ~prefix () =
  let f n = prefix ^ "." ^ n in
  let body =
    SStats_request
      {
        ssr_type = v16 (f "stats_type");
        ssr_flags = v16 (f "flags");
        ssr_match = sym_match ~prefix:(f "match") ();
        ssr_table_id = v8 (f "table_id");
        ssr_out_port = v16 (f "out_port");
        ssr_port_no = v16 (f "port_no");
        ssr_queue_port = v16 (f "queue_port");
        ssr_queue_id = v32 (f "queue_id");
      }
  in
  let phys = C.Sizes.header + body_phys_len body in
  {
    sm_type = c8 C.Msg_type.stats_request;
    sm_length = v16 (f "length");
    sm_phys_len = phys;
    sm_xid = c32 0x5057;
    sm_body = body;
  }

(* Short Symb (Table 1): a 10-byte message where only the version is
   concrete — type, length, xid and the two body bytes are symbolic. *)
let short_symbolic ~prefix () =
  let f n = prefix ^ "." ^ n in
  {
    sm_type = v8 (f "type");
    sm_length = v16 (f "length");
    sm_phys_len = 10;
    sm_xid = v32 (f "xid");
    sm_body = SRaw [| v8 (f "b0"); v8 (f "b1") |];
  }

(* --- symbolic wire layout ------------------------------------------------ *)

let push_bytes acc e nbytes =
  let bs = bytes_of_value e nbytes in
  Array.fold_left (fun acc b -> b :: acc) acc bs

let push_pad acc n =
  let rec go acc n = if n = 0 then acc else go (c8 0 :: acc) (n - 1) in
  go acc n

let push_match acc (m : smatch) =
  let acc = push_bytes acc m.s_wildcards 4 in
  let acc = push_bytes acc m.s_in_port 2 in
  let acc = push_bytes acc m.s_dl_src 6 in
  let acc = push_bytes acc m.s_dl_dst 6 in
  let acc = push_bytes acc m.s_dl_vlan 2 in
  let acc = push_bytes acc m.s_dl_vlan_pcp 1 in
  let acc = push_pad acc 1 in
  let acc = push_bytes acc m.s_dl_type 2 in
  let acc = push_bytes acc m.s_nw_tos 1 in
  let acc = push_bytes acc m.s_nw_proto 1 in
  let acc = push_pad acc 2 in
  let acc = push_bytes acc m.s_nw_src 4 in
  let acc = push_bytes acc m.s_nw_dst 4 in
  let acc = push_bytes acc m.s_tp_src 2 in
  push_bytes acc m.s_tp_dst 2

let push_action acc (a : saction) =
  let acc = push_bytes acc a.a_type 2 in
  let acc = push_bytes acc a.a_len 2 in
  Array.fold_left (fun acc b -> b :: acc) acc a.a_body

let push_packet acc (p : Packet.Sym_packet.t) =
  (* fixed 64-byte frame layout: eth (14 or 18) + ip (20) + tcp/udp/other,
     zero-padded to 64 *)
  let open Packet.Sym_packet in
  let acc0 = acc in
  let acc = push_bytes acc0 p.sdl_dst 6 in
  let acc = push_bytes acc p.sdl_src 6 in
  let acc =
    match p.svlan with
    | Some { svid; spcp } ->
      let acc = push_bytes acc (c16 Packet.Constants_pkt.eth_type_vlan) 2 in
      let tci =
        Expr.logor
          (Expr.shl (Expr.zext ~width:16 (Expr.logand spcp (c8 7))) (c16 13))
          (Expr.logand svid (c16 0xfff))
      in
      push_bytes acc tci 2
    | None -> acc
  in
  let acc = push_bytes acc p.sdl_type 2 in
  let acc =
    match p.snet with
    | Sipv4 ip ->
      let acc = push_bytes acc (c8 0x45) 1 in
      let acc = push_bytes acc ip.stos 1 in
      let acc = push_bytes acc (c16 40) 2 in
      let acc = push_pad acc 4 (* id, frag *) in
      let acc = push_bytes acc (c8 64) 1 in
      let acc = push_bytes acc ip.sproto 1 in
      let acc = push_pad acc 2 (* checksum stubbed *) in
      let acc = push_bytes acc ip.ssrc 4 in
      let acc = push_bytes acc ip.sdst 4 in
      (match ip.stransport with
       | Stcp { stcp_src; stcp_dst } ->
         let acc = push_bytes acc stcp_src 2 in
         push_bytes acc stcp_dst 2
       | Sudp { sudp_src; sudp_dst } ->
         let acc = push_bytes acc sudp_src 2 in
         push_bytes acc sudp_dst 2
       | Sicmp { sicmp_type; sicmp_code } ->
         let acc = push_bytes acc sicmp_type 1 in
         push_bytes acc sicmp_code 1
       | Sother_transport -> acc)
    | Sother_net -> acc
  in
  (* pad to exactly 64 bytes *)
  let emitted = List.length acc - List.length acc0 in
  push_pad acc (max 0 (64 - emitted))

let push_body acc = function
  | SHello | SFeatures_request | SGet_config_request | SBarrier_request -> acc
  | SEcho_request bytes -> Array.fold_left (fun acc b -> b :: acc) acc bytes
  | SSet_config { scfg_flags; smiss_send_len } ->
    let acc = push_bytes acc scfg_flags 2 in
    push_bytes acc smiss_send_len 2
  | SPacket_out { spo_buffer_id; spo_in_port; spo_actions; spo_data } ->
    let acc = push_bytes acc spo_buffer_id 4 in
    let acc = push_bytes acc spo_in_port 2 in
    let acc = push_bytes acc (c16 (actions_phys_len spo_actions)) 2 in
    let acc = List.fold_left push_action acc spo_actions in
    (match spo_data with Some p -> push_packet acc p | None -> acc)
  | SFlow_mod fm ->
    let acc = push_match acc fm.sfm_match in
    let acc = push_bytes acc fm.sfm_cookie 8 in
    let acc = push_bytes acc fm.sfm_command 2 in
    let acc = push_bytes acc fm.sfm_idle_timeout 2 in
    let acc = push_bytes acc fm.sfm_hard_timeout 2 in
    let acc = push_bytes acc fm.sfm_priority 2 in
    let acc = push_bytes acc fm.sfm_buffer_id 4 in
    let acc = push_bytes acc fm.sfm_out_port 2 in
    let acc = push_bytes acc fm.sfm_flags 2 in
    List.fold_left push_action acc fm.sfm_actions
  | SStats_request s ->
    let acc = push_bytes acc s.ssr_type 2 in
    let acc = push_bytes acc s.ssr_flags 2 in
    (* the physical body carries the flow-request view; the port and queue
       views alias its leading bytes on the real wire, which the concrete
       test-case printer resolves per chosen stats type *)
    let acc = push_match acc s.ssr_match in
    let acc = push_bytes acc s.ssr_table_id 1 in
    let acc = push_pad acc 1 in
    push_bytes acc s.ssr_out_port 2
  | SQueue_get_config_request { sqgc_port } ->
    let acc = push_bytes acc sqgc_port 2 in
    push_pad acc 2
  | SVendor { sv_vendor } -> push_bytes acc sv_vendor 4
  | SRaw bytes -> Array.fold_left (fun acc b -> b :: acc) acc bytes

(* The message as symbolic wire bytes (header + body). *)
let to_sym_bytes (m : t) =
  let acc = [] in
  let acc = push_bytes acc (c8 C.version) 1 in
  let acc = push_bytes acc m.sm_type 1 in
  let acc = push_bytes acc m.sm_length 2 in
  let acc = push_bytes acc m.sm_xid 4 in
  let acc = push_body acc m.sm_body in
  Array.of_list (List.rev acc)

(* Concrete wire bytes of the message under a model. *)
let concretize_wire model (m : t) =
  let bytes = to_sym_bytes m in
  String.init (Array.length bytes) (fun i ->
      Char.chr (Int64.to_int (Model.eval_bv model bytes.(i)) land 0xff))

(* --- lenient wire decoder (live replay) ---------------------------------- *)

(* [of_wire] inverts [to_sym_bytes] over *concrete* reproducer bytes: every
   field comes back as a constant expression, laid out exactly as push_body
   wrote it, so a live switch process can rebuild the structured input an
   in-process replay would have seen and drive the same agent code.

   The decoder is deliberately lenient where reproducers are deliberately
   broken: the claimed length may disagree with the physical byte count
   (that is the Short Symb test's whole point), and a body that does not
   fit its type's structured layout falls back to [SRaw] — which is also
   what the agents' raw-fallback path sees in process, so the fallback
   preserves behavioural fidelity rather than papering over it.

   One documented infidelity: a symbolic stats request carries independent
   port-view/queue-view variables that the physical wire cannot — on the
   wire those views alias the flow-view match bytes.  [of_wire] resolves
   the alias the way a real switch would (port_no and queue_port from the
   first post-flags bytes, queue_id from bytes 8..11 of that region), so a
   witness whose model gives the aliased variables contradictory values
   replays differently live.  The live layer reports such drift as a
   verdict difference rather than hiding it. *)

exception Of_wire_error of string

let of_wire s =
  let len = String.length s in
  if len < C.Sizes.header then
    raise (Of_wire_error (Printf.sprintf "message shorter than a header: %d bytes" len));
  let u8 off = Char.code s.[off] in
  let u16 off = (u8 off lsl 8) lor u8 (off + 1) in
  let u32 off = (u16 off lsl 16) lor u16 (off + 2) in
  let i64 off n =
    let rec go acc i =
      if i >= n then acc
      else go (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (u8 (off + i)))) (i + 1)
    in
    go 0L 0
  in
  let c64 v = Expr.const ~width:64 v in
  let body_off = C.Sizes.header in
  let blen = len - body_off in
  let raw_body () = SRaw (Array.init blen (fun i -> c8 (u8 (body_off + i)))) in
  (* Structured body parsing; [exit_raw] abandons ship to SRaw — the same
     shape the in-process raw-fallback path dispatches on. *)
  let exception Lenient in
  let read_match off =
    {
      s_wildcards = c32 (u32 off);
      s_in_port = c16 (u16 (off + 4));
      s_dl_src = c48 (i64 (off + 6) 6);
      s_dl_dst = c48 (i64 (off + 12) 6);
      s_dl_vlan = c16 (u16 (off + 18));
      s_dl_vlan_pcp = c8 (u8 (off + 20));
      (* 1 pad byte *)
      s_dl_type = c16 (u16 (off + 22));
      s_nw_tos = c8 (u8 (off + 24));
      s_nw_proto = c8 (u8 (off + 25));
      (* 2 pad bytes *)
      s_nw_src = c32 (u32 (off + 28));
      s_nw_dst = c32 (u32 (off + 32));
      s_tp_src = c16 (u16 (off + 36));
      s_tp_dst = c16 (u16 (off + 38));
    }
  in
  let read_actions off stop =
    let rec go off acc =
      if off = stop then List.rev acc
      else if stop - off < 4 then raise Lenient
      else begin
        let alen = u16 (off + 2) in
        if alen < 4 || off + alen > stop then raise Lenient;
        let a =
          {
            a_type = c16 (u16 off);
            a_len = c16 alen;
            a_body = Array.init (alen - 4) (fun i -> c8 (u8 (off + 4 + i)));
          }
        in
        go (off + alen) (a :: acc)
      end
    in
    go off []
  in
  let read_packet off =
    match Packet.Headers.of_bytes (String.sub s off (len - off)) with
    | pkt -> Packet.Sym_packet.of_concrete pkt
    | exception Packet.Headers.Parse_error _ -> raise Lenient
  in
  let typ = u8 1 in
  let body =
    try
      if typ = C.Msg_type.hello && blen = 0 then SHello
      else if typ = C.Msg_type.echo_request then
        SEcho_request (Array.init blen (fun i -> c8 (u8 (body_off + i))))
      else if typ = C.Msg_type.features_request && blen = 0 then SFeatures_request
      else if typ = C.Msg_type.get_config_request && blen = 0 then SGet_config_request
      else if typ = C.Msg_type.set_config && blen = 4 then
        SSet_config { scfg_flags = c16 (u16 body_off); smiss_send_len = c16 (u16 (body_off + 2)) }
      else if typ = C.Msg_type.packet_out && blen >= 8 then begin
        let alen = u16 (body_off + 6) in
        if 8 + alen > blen then raise Lenient;
        let actions = read_actions (body_off + 8) (body_off + 8 + alen) in
        let data_off = body_off + 8 + alen in
        let data = if data_off = len then None else Some (read_packet data_off) in
        SPacket_out
          {
            spo_buffer_id = c32 (u32 body_off);
            spo_in_port = c16 (u16 (body_off + 4));
            spo_actions = actions;
            spo_data = data;
          }
      end
      else if typ = C.Msg_type.flow_mod && blen >= 64 then
        SFlow_mod
          {
            sfm_match = read_match body_off;
            sfm_cookie = c64 (i64 (body_off + 40) 8);
            sfm_command = c16 (u16 (body_off + 48));
            sfm_idle_timeout = c16 (u16 (body_off + 50));
            sfm_hard_timeout = c16 (u16 (body_off + 52));
            sfm_priority = c16 (u16 (body_off + 54));
            sfm_buffer_id = c32 (u32 (body_off + 56));
            sfm_out_port = c16 (u16 (body_off + 60));
            sfm_flags = c16 (u16 (body_off + 62));
            sfm_actions = read_actions (body_off + 64) len;
          }
      else if typ = C.Msg_type.stats_request && blen = 48 then begin
        (* Post-flags region at body_off+4: the flow view's match, which
           the port and queue views alias on the real wire (see above). *)
        let region = body_off + 4 in
        SStats_request
          {
            ssr_type = c16 (u16 body_off);
            ssr_flags = c16 (u16 (body_off + 2));
            ssr_match = read_match region;
            ssr_table_id = c8 (u8 (region + 40));
            ssr_out_port = c16 (u16 (region + 42));
            ssr_port_no = c16 (u16 region);
            ssr_queue_port = c16 (u16 region);
            ssr_queue_id = c32 (u32 (region + 4));
          }
      end
      else if typ = C.Msg_type.barrier_request && blen = 0 then SBarrier_request
      else if typ = C.Msg_type.queue_get_config_request && blen = 4 then
        SQueue_get_config_request { sqgc_port = c16 (u16 body_off) }
      else if typ = C.Msg_type.vendor && blen = 4 then SVendor { sv_vendor = c32 (u32 body_off) }
      else raw_body ()
    with Lenient -> raw_body ()
  in
  {
    sm_type = c8 typ;
    sm_length = c16 (u16 2);
    sm_phys_len = len;
    sm_xid = c32 (u32 4);
    sm_body = body;
  }
