(* The `soft` command-line tool, mirroring SOFT's decoupled workflow
   (paper §2.4 and §4.2):

     soft run    --agent ref --test packet_out --out ref.run
         phase 1, run privately by each vendor: symbolic execution of one
         agent on one test; writes path conditions + normalized results.

     soft group  ref.run
         the grouping tool: report the distinct output results.

     soft check  ref.run ovs.run
         the inconsistency finder: crosscheck two phase-1 outputs.

     soft compare --agent-a ref --agent-b ovs --test packet_out
         both phases in one process, with reproducer test cases.

     soft list
         available agents and tests.

   Service mode (crash-only; all state in one directory):

     soft serve  --dir DIR
         recover the service (replay the WAL) and drain the job queue;
         kill -9 at any instant and restart — nothing acknowledged is lost.

     soft submit --dir DIR -a ref -b ovs --test packet_out --test flow_mod
         enqueue a job; refused with exit 4 once the queue is full.

     soft status --dir DIR
         read-only snapshot: jobs, units, queue depth, store size.

   Exit status (scriptable):
     0  clean — no inconsistencies, nothing undecided or unvalidated
     1  inconsistencies found (replay-confirmed ones under --validate)
     2  usage error (bad flags, unknown agent/test, mismatched resume file)
     3  inconclusive — undecided/faulted pairs, refuted or unreplayable
        reports, or an injected fault aborting a run
     4  backpressure — the service queue is at its pending watermark
     125  unexpected internal exception *)

let agents =
  [
    ("ref", Switches.Reference_switch.agent);
    ("reference", Switches.Reference_switch.agent);
    ("ovs", Switches.Open_vswitch.agent);
    ("modified", Switches.Modified_switch.agent);
  ]

let lookup_agent name =
  match List.assoc_opt (String.lowercase_ascii name) agents with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown agent %s (available: ref, ovs, modified)" name)

let lookup_test id =
  match Harness.Test_spec.by_id id with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown test %s (available: %s)" id
         (String.concat ", "
            (List.map (fun (t : Harness.Test_spec.t) -> t.id) (Harness.Test_spec.all ()))))

open Cmdliner

let agent_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (lookup_agent s) in
  let print fmt a = Format.fprintf fmt "%s" (Switches.Agent_intf.name a) in
  Arg.conv (parse, print)

let test_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (lookup_test s) in
  let print fmt (t : Harness.Test_spec.t) = Format.fprintf fmt "%s" t.id in
  Arg.conv (parse, print)

let max_paths =
  Arg.(
    value
    & opt int Harness.Runner.default_max_paths
    & info [ "max-paths" ] ~doc:"Path exploration budget per run.")

let strategy =
  let strategy_conv =
    Arg.conv ~docv:"STRATEGY"
      ( (fun s ->
          match Symexec.Strategy.of_string s with
          | Some st -> Ok st
          | None -> Error (`Msg ("unknown strategy " ^ s))),
        fun fmt s -> Format.fprintf fmt "%s" (Symexec.Strategy.to_string s) )
  in
  Arg.(
    value
    & opt strategy_conv Symexec.Strategy.default
    & info [ "strategy" ]
        ~doc:
          "Search strategy: dfs, bfs, random, interleave.  The randomized \
           strategies accept an explicit seed as random:$(i,SEED) / \
           interleave:$(i,SEED) for reproducible exploration orders.")

(* --- resource budgets (the graceful-degradation layer) ---------------- *)

let budget_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-ms" ]
        ~doc:
          "Wall-clock budget per solver query, in milliseconds.  An exhausted \
           query returns unknown instead of running forever; crosscheck then \
           escalates down the chunk-split retry ladder and finally reports the \
           pair as undecided.")

let max_conflicts =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ]
        ~doc:"CDCL conflict budget per solver query (deterministic counterpart of --budget-ms).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ]
        ~doc:
          "Wall-clock budget for one whole symbolic-execution run; exploration \
           stops at the deadline and keeps the paths found so far.")

let split =
  let positive_conv =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok n
          | Some _ -> Error (`Msg "chunk size must be positive")
          | None -> Error (`Msg ("expected an integer, got " ^ s))),
        Format.pp_print_int )
  in
  Arg.(
    value
    & opt (some positive_conv) None
    & info [ "split" ]
        ~doc:
          "Crosscheck chunk pairs of at most N member path conditions instead of \
           monolithic group disjunctions.")

let no_incremental =
  Arg.(
    value
    & flag
    & info [ "no-incremental" ]
        ~doc:
          "Solve every crosscheck pair on a fresh SAT instance instead of the \
           default row-major incremental sessions (shared bit-blasting of the \
           row conjunct, assumption literals, learnt-clause reuse).  Reports \
           are byte-identical either way; this is an escape hatch for \
           isolating solver issues and for benchmarking the amortization.")

let no_share_base =
  Arg.(
    value
    & flag
    & info [ "no-share-base" ]
        ~doc:
          "Disable the shared blasted base in the crosscheck: each row \
           re-blasts its own conjunct in a per-row session instead of every \
           worker adopting a copy of one shared CNF prefix.  Only affects \
           unbudgeted incremental runs (budgeted runs never share).  Reports \
           are byte-identical either way; this is an escape hatch for \
           isolating solver issues and for benchmarking the sharing win.")

let no_clause_exchange =
  Arg.(
    value
    & flag
    & info [ "no-clause-exchange" ]
        ~doc:
          "Disable cross-domain learnt-clause exchange between the workers' \
           adopted copies of the shared base (only active with sharing on and \
           more than one job).  Exchange affects solve times, never verdicts; \
           reports are byte-identical either way.")

let no_canon =
  Arg.(
    value
    & flag
    & info [ "no-canon" ]
        ~doc:
          "Disable the solver's canonical (variable-renaming-invariant) memo \
           layer: queries are cached on exact constraint identity only.  \
           Verdicts and reports are byte-identical either way; this is an \
           escape hatch for isolating cache issues and for benchmarking the \
           canonicalization win.")

let no_prune =
  Arg.(
    value
    & flag
    & info [ "no-prune" ]
        ~doc:
          "Disable UNSAT-core row pruning in the crosscheck: every pair is \
           solved individually instead of skipping whole rows whose condition \
           is unsatisfiable against the other side's combined input space.  \
           With no (or deterministic) budgets, reports are byte-identical \
           either way.")

let jobs =
  let jobs_conv =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | Some 0 -> Ok (Harness.Pool.default_jobs ())
          | Some n when n >= 1 -> Ok n
          | Some _ -> Error (`Msg "jobs must be positive (or 0 for one per core)")
          | None -> Error (`Msg ("expected an integer, got " ^ s))),
        Format.pp_print_int )
  in
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the crosscheck (and, under $(b,compare), the two \
           agents' explorations).  0 picks one per core.  The report is \
           independent of N: pairs are merged back in a fixed order and the \
           checkpoint writer stays single-threaded.")

(* The default budget reaches every solver call in the process — including
   the ones issued deep inside the engine — without threading a parameter
   through each layer. *)
let apply_budget budget_ms max_conflicts =
  Smt.Solver.set_default_budget
    (Smt.Solver.budget ?max_conflicts ?timeout_ms:budget_ms ())

(* worker domains inherit the flag via the crosscheck's config snapshot *)
let apply_canon no_canon = if no_canon then Smt.Solver.set_canon false

(* --- the supervision layer (watchdog + quarantine) -------------------- *)

let task_deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "task-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Enable watchdog supervision: a monitor domain preemptively cancels \
           any crosscheck pair attempt that overruns $(docv) of wall clock, \
           even mid-bit-blast where cooperative budgets cannot reach.  Killed \
           attempts are retried with backoff and finally quarantined \
           (recorded undecided with a failure taxonomy, and skipped by a \
           checkpoint resume).")

let max_retries =
  Arg.(
    value
    & opt int 2
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Retries after a supervised attempt is killed or crashes, before the \
           pair is quarantined (default 2).  Only meaningful with \
           --task-deadline-ms or --mem-ceiling-mb.")

let mem_ceiling_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-ceiling-mb" ] ~docv:"MB"
        ~doc:
          "Enable the memory-pressure guard: when the major heap crosses \
           $(docv) MiB the monitor sheds the solver memo caches and degrades \
           in-flight queries to undecided instead of letting the process die.")

let backoff_ms =
  let ladder_conv =
    Arg.conv ~docv:"MS,MS,..."
      ( (fun s ->
          let parts = String.split_on_char ',' s in
          let steps = List.filter_map int_of_string_opt parts in
          if List.length steps <> List.length parts || steps = [] then
            Error (`Msg ("expected a comma-separated list of integers, got " ^ s))
          else if List.exists (fun b -> b < 0) steps then
            Error (`Msg "backoff steps must be non-negative")
          else Ok steps),
        fun fmt l ->
          Format.fprintf fmt "%s" (String.concat "," (List.map string_of_int l)) )
  in
  Arg.(
    value
    & opt ladder_conv [ 10; 50; 250 ]
    & info [ "backoff-ms" ] ~docv:"MS,MS,..."
        ~doc:
          "Backoff ladder between supervised retries, one step per retry (the \
           last step repeats; default 10,50,250).  Each sleep gets \
           deterministic jitter seeded from the pair index.")

(* Supervision engages only when a flag that needs the monitor is given;
   otherwise the crosscheck runs the exact unsupervised code path. *)
let make_supervise task_deadline_ms max_retries backoff_ms mem_ceiling_mb =
  match (task_deadline_ms, mem_ceiling_mb) with
  | None, None -> None
  | deadline_ms, mem_ceiling_mb ->
    Some
      (Harness.Supervise.policy ?deadline_ms ~max_retries ~backoff_ms ?mem_ceiling_mb ())

(* --- the self-validation layer ---------------------------------------- *)

let certify =
  Arg.(
    value
    & flag
    & info [ "certify" ]
        ~doc:
          "Require a checked DRUP proof for every UNSAT solver answer; an \
           answer whose proof the independent checker rejects is downgraded \
           to unknown (the pair becomes undecided) instead of being trusted.")

let validate =
  Arg.(
    value
    & flag
    & info [ "validate" ]
        ~doc:
          "Replay every found inconsistency's concrete witness through both \
           agents and confirm the traces really diverge; refuted or \
           unreplayable reports are flagged and make the run inconclusive.")

let chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Enable deterministic internal fault injection with this seed \
           (solver faults, agent-step faults, checkpoint truncation, clock \
           jumps).  Faults may only degrade results to undecided — never \
           change a verdict.")

let chaos_rate =
  let rate_conv =
    Arg.conv ~docv:"RATE"
      ( (fun s ->
          match float_of_string_opt s with
          | Some r when r >= 0.0 && r <= 1.0 -> Ok r
          | Some _ -> Error (`Msg "fault rate must be within [0, 1]")
          | None -> Error (`Msg ("expected a float, got " ^ s))),
        fun fmt r -> Format.fprintf fmt "%g" r )
  in
  Arg.(
    value
    & opt rate_conv 0.05
    & info [ "chaos-rate" ] ~docv:"RATE"
        ~doc:"Per-injection-point fault probability under --chaos-seed (default 0.05).")

let chaos_points =
  let points_conv =
    Arg.conv ~docv:"POINT,POINT,..."
      ( (fun s ->
          let parts = String.split_on_char ',' s in
          let available =
            String.concat ", "
              (List.map Harness.Chaos.point_name Harness.Chaos.all_points)
          in
          match
            List.filter (fun p -> Harness.Chaos.point_of_name p = None) parts
          with
          | [] -> Ok (List.filter_map Harness.Chaos.point_of_name parts)
          | unknown ->
            (* name the offending tokens, not the whole input *)
            Error
              (`Msg
                 (Printf.sprintf "unknown chaos point%s %s (available: %s)"
                    (if List.length unknown = 1 then "" else "s")
                    (String.concat ", "
                       (List.map (Printf.sprintf "%S") unknown))
                    available))),
        fun fmt pts ->
          Format.fprintf fmt "%s"
            (String.concat "," (List.map Harness.Chaos.point_name pts)) )
  in
  Arg.(
    value
    & opt (some points_conv) None
    & info [ "chaos-points" ] ~docv:"POINT,POINT,..."
        ~doc:
          "Restrict --chaos-seed to these injection points (e.g. \
           torn-frame,conn-reset,read-stall for the live-wire transport \
           sweep).  A masked point never fires and never draws, so the \
           other points' schedules are unchanged.")

let apply_certify c = Smt.Solver.set_certify c

let apply_chaos ?points seed rate =
  match seed with
  | None -> ()
  | Some s -> Harness.Chaos.install (Harness.Chaos.plan ?only:points ~seed:s ~rate ())

(* --- fault-schedule record/replay (check and compare) ------------------ *)

let replay_schedule_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay-schedule" ] ~docv:"FILE"
        ~doc:
          "Replay an explicit fault schedule (a repro file written by \
           $(b,--record-schedule) or $(b,soft explore --repro)): exactly the \
           listed (point, key, draw-index) sites fire, every other draw is \
           spared.  The schedule is the complete fault specification, so this \
           conflicts with --chaos-seed.")

let record_schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record-schedule" ] ~docv:"FILE"
        ~doc:
          "After the run, write the faults that actually fired as an explicit \
           schedule to $(docv) — a repro file that $(b,--replay-schedule) \
           re-executes deterministically, at any -j.  Requires --chaos-seed \
           (or --replay-schedule, which re-records itself).")

(* Install the chaos plan for check/compare, honouring the record/replay
   surface.  Errors are usage errors (exit 2). *)
let setup_chaos ?points ~replay ~record seed rate =
  let recording = record <> None in
  match (replay, seed) with
  | Some _, Some _ ->
    Error
      "--replay-schedule conflicts with --chaos-seed (the schedule is the \
       complete fault specification)"
  | Some file, None -> (
    match Harness.Schedule.load file with
    | Error e -> Error (Printf.sprintf "cannot load schedule %s: %s" file e)
    | Ok sched -> (
      match Harness.Chaos.scripted ?only:points ~record:recording sched with
      | plan ->
        Harness.Chaos.install plan;
        Ok ()
      | exception Invalid_argument msg -> Error msg))
  | None, Some s ->
    Harness.Chaos.install
      (Harness.Chaos.plan ?only:points ~record:recording ~seed:s ~rate ());
    Ok ()
  | None, None ->
    if recording then
      Error "--record-schedule requires --chaos-seed or --replay-schedule"
    else Ok ()

(* Write the fired draws of the still-installed plan as a repro file. *)
let save_recorded ~meta record =
  match (record, Harness.Chaos.current ()) with
  | Some file, Some plan ->
    let sched = Harness.Chaos.to_schedule ~meta plan in
    Harness.Schedule.save file sched;
    Format.printf "recorded %d fired site(s) to %s@."
      (Harness.Schedule.cardinal sched) file
  | _ -> ()

let chaos_report () =
  match Harness.Chaos.current () with
  | None -> ()
  | Some p -> Format.printf "%a@." Harness.Chaos.pp p

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let agent =
    Arg.(required & opt (some agent_conv) None & info [ "agent" ] ~doc:"Agent under test.")
  in
  let test = Arg.(required & opt (some test_conv) None & info [ "test" ] ~doc:"Test id.") in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output file.")
  in
  let run agent test out max_paths strategy budget_ms max_conflicts deadline_ms certify
      chaos_seed chaos_rate chaos_points =
    apply_budget budget_ms max_conflicts;
    apply_certify certify;
    apply_chaos ?points:chaos_points chaos_seed chaos_rate;
    match Harness.Runner.execute ~max_paths ~strategy ?deadline_ms agent test with
    | r ->
      Harness.Serialize.save out (Harness.Serialize.of_run r);
      Format.printf "%s on %s: %a@." r.Harness.Runner.run_agent r.run_test
        Symexec.Engine.pp_stats r.run_stats;
      Format.printf "coverage: %a@." Symexec.Coverage.pp_report
        (Harness.Runner.coverage_report r);
      Format.printf "wrote %s@." out;
      chaos_report ();
      0
    | exception Harness.Chaos.Injected_fault p ->
      Format.eprintf "soft: injected fault (%s) aborted the run@." p;
      3
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Phase 1: symbolically execute one agent on one test.")
    Term.(
      const run $ agent $ test $ out $ max_paths $ strategy $ budget_ms $ max_conflicts
      $ deadline_ms $ certify $ chaos_seed $ chaos_rate $ chaos_points)

(* --- group ----------------------------------------------------------- *)

let group_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"RUN_FILE") in
  let run file =
    let saved = Harness.Serialize.load file in
    let g = Soft.Grouping.of_saved saved in
    Format.printf "%a@." Soft.Grouping.pp g;
    0
  in
  Cmd.v
    (Cmd.info "group" ~doc:"Group path conditions of a phase-1 run by output result.")
    Term.(const run $ file)

(* --- check ----------------------------------------------------------- *)

let check_cmd =
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"RUN_A") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"RUN_B") in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically snapshot crosscheck progress to $(docv) (atomic \
             rename), so a killed run can restart where it left off.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a previous --checkpoint snapshot; pairs it already \
             decided are not re-solved.  A missing file is a fresh start.  Use \
             the same file for --checkpoint and --resume to make a run \
             restartable in place.")
  in
  let run file_a file_b split budget_ms max_conflicts checkpoint resume jobs no_incremental
      no_canon no_prune no_share_base no_clause_exchange certify chaos_seed chaos_rate
      chaos_points replay record task_deadline_ms max_retries backoff_ms mem_ceiling_mb =
    apply_budget budget_ms max_conflicts;
    apply_canon no_canon;
    apply_certify certify;
    match setup_chaos ?points:chaos_points ~replay ~record chaos_seed chaos_rate with
    | Error msg ->
      Format.eprintf "soft: %s@." msg;
      2
    | Ok () -> (
      let supervise = make_supervise task_deadline_ms max_retries backoff_ms mem_ceiling_mb in
      let a = Soft.Grouping.of_saved (Harness.Serialize.load file_a) in
      let b = Soft.Grouping.of_saved (Harness.Serialize.load file_b) in
      match
        Soft.Crosscheck.check ?split ?checkpoint ?resume ~jobs
          ~incremental:(not no_incremental) ~prune:(not no_prune)
          ~share:(not no_share_base) ~exchange:(not no_clause_exchange) ?supervise a b
      with
      | outcome ->
        Format.printf "%a@." Soft.Crosscheck.pp outcome;
        Format.printf "root causes:@.%a@." Soft.Report.pp_summary
          (Soft.Report.summarize outcome);
        chaos_report ();
        save_recorded
          ~meta:
            [
              ("cmd", "check");
              ("runs", Filename.basename file_a ^ " " ^ Filename.basename file_b);
            ]
          record;
        Soft.Report.exit_status outcome
      | exception Soft.Crosscheck.Checkpoint_error msg ->
        (* pointing --resume at the wrong runs' snapshot is an operator
           mistake, not a finding: usage error *)
        Format.eprintf "soft: cannot resume: %s@." msg;
        2)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Phase 2: crosscheck two phase-1 runs for inconsistencies.")
    Term.(
      const run $ file_a $ file_b $ split $ budget_ms $ max_conflicts $ checkpoint $ resume
      $ jobs $ no_incremental $ no_canon $ no_prune $ no_share_base $ no_clause_exchange
      $ certify $ chaos_seed $ chaos_rate $ chaos_points $ replay_schedule_arg
      $ record_schedule_arg $ task_deadline_ms $ max_retries
      $ backoff_ms $ mem_ceiling_mb)

(* --- live validation (compare --validate-live) ------------------------ *)

(* The spawn template names agents by their CLI keys; recover the key an
   Agent_intf.t was looked up under (the assoc list shares values). *)
let cli_name_of_agent a =
  match List.find_opt (fun (_, v) -> v == a) agents with
  | Some (name, _) -> name
  | None -> Switches.Agent_intf.name a

let replace_all ~sub ~by s =
  let slen = String.length sub in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i > String.length s - slen then Buffer.add_substring buf s i (String.length s - i)
    else if String.sub s i slen = sub then begin
      Buffer.add_string buf by;
      go (i + slen)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  if slen = 0 then s
  else begin
    go 0;
    Buffer.contents buf
  end

let validate_live_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "validate-live" ] ~docv:"CMD"
        ~doc:
          "Replay every found inconsistency against two live switch processes \
           spawned from $(docv), with $(b,{agent}) and $(b,{socket}) \
           substituted per endpoint (e.g. 'soft switch-serve --agent {agent} \
           --socket {socket}').  Transport and process failures degrade the \
           affected witnesses to transport-failed instead of aborting; a \
           live-confirmed divergence exits 1, an inconclusive live pass 3.")

let live_socket_a =
  Arg.(
    value
    & opt (some string) None
    & info [ "live-socket-a" ] ~docv:"ADDR"
        ~doc:
          "Validate against an already-running live switch for agent A at \
           $(docv) (unix:PATH or HOST:PORT) instead of spawning one; requires \
           --live-socket-b.")

let live_socket_b =
  Arg.(
    value
    & opt (some string) None
    & info [ "live-socket-b" ] ~docv:"ADDR"
        ~doc:"Live switch address for agent B; see --live-socket-a.")

(* Decide the two live endpoints, or None when live validation is off.
   Errors here are usage errors (exit 2). *)
let live_endpoints ~cmd_template ~sock_a ~sock_b ~agent_a ~agent_b =
  let addr s = Openflow.Conn.addr_of_string s in
  match (cmd_template, sock_a, sock_b) with
  | None, None, None -> Ok None
  | _, Some a, Some b ->
    Ok
      (Some
         ( { Soft.Live.ep_agent = cli_name_of_agent agent_a; ep_addr = addr a; ep_cmd = None },
           { Soft.Live.ep_agent = cli_name_of_agent agent_b; ep_addr = addr b; ep_cmd = None } ))
  | _, Some _, None | _, None, Some _ ->
    Error "--live-socket-a and --live-socket-b must be given together"
  | Some tmpl, None, None ->
    let endpoint tag agent =
      let name = cli_name_of_agent agent in
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "soft-live-%d-%s.sock" (Unix.getpid ()) tag)
      in
      {
        Soft.Live.ep_agent = name;
        ep_addr = Openflow.Conn.Unix_sock sock;
        ep_cmd =
          Some (replace_all ~sub:"{socket}" ~by:("unix:" ^ sock)
                  (replace_all ~sub:"{agent}" ~by:name tmpl));
      }
    in
    Ok (Some (endpoint "a" agent_a, endpoint "b" agent_b))

(* --- compare --------------------------------------------------------- *)

let compare_cmd =
  let agent_a =
    Arg.(required & opt (some agent_conv) None & info [ "agent-a"; "a" ] ~doc:"First agent.")
  in
  let agent_b =
    Arg.(required & opt (some agent_conv) None & info [ "agent-b"; "b" ] ~doc:"Second agent.")
  in
  let test = Arg.(required & opt (some test_conv) None & info [ "test" ] ~doc:"Test id.") in
  let cases =
    Arg.(value & flag & info [ "cases" ] ~doc:"Print a concrete reproducer per inconsistency.")
  in
  let run agent_a agent_b test cases max_paths strategy split budget_ms max_conflicts
      deadline_ms jobs no_incremental no_canon no_prune no_share_base no_clause_exchange
      certify validate validate_live sock_a sock_b chaos_seed chaos_rate chaos_points
      replay record task_deadline_ms max_retries backoff_ms mem_ceiling_mb =
    apply_budget budget_ms max_conflicts;
    apply_canon no_canon;
    apply_certify certify;
    let supervise = make_supervise task_deadline_ms max_retries backoff_ms mem_ceiling_mb in
    match
      match setup_chaos ?points:chaos_points ~replay ~record chaos_seed chaos_rate with
      | Error _ as e -> e
      | Ok () ->
        live_endpoints ~cmd_template:validate_live ~sock_a ~sock_b ~agent_a ~agent_b
    with
    | Error msg | (exception Invalid_argument msg) ->
      Format.eprintf "soft: %s@." msg;
      2
    | Ok live -> (
      match
        Soft.Pipeline.compare_agents ~max_paths ~strategy ?deadline_ms ?split ~jobs
          ~incremental:(not no_incremental) ~prune:(not no_prune)
          ~share:(not no_share_base) ~exchange:(not no_clause_exchange) ?supervise
          ~validate agent_a agent_b test
      with
      | c ->
        Format.printf "%a@." Soft.Pipeline.pp_comparison c;
        if cases then
          List.iteri
            (fun i tc -> Format.printf "@.=== reproducer %d ===@.%a@." i Soft.Testcase.pp tc)
            (Soft.Pipeline.test_cases c);
        let base =
          Soft.Report.exit_status ?validation:c.Soft.Pipeline.c_validation
            c.Soft.Pipeline.c_outcome
        in
        let code =
          match live with
          | None -> base
          | Some (ep_a, ep_b) ->
            let summary = Soft.Live.validate_live ~a:ep_a ~b:ep_b test c.Soft.Pipeline.c_outcome in
            Format.printf "%a@." Soft.Live.pp summary;
            Soft.Live.merge_exit base (Soft.Live.exit_status summary)
        in
        chaos_report ();
        save_recorded
          ~meta:[ ("cmd", "compare"); ("workload", test.Harness.Test_spec.id) ]
          record;
        code
      | exception Harness.Chaos.Injected_fault p ->
        Format.eprintf "soft: injected fault (%s) aborted the run@." p;
        3)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run both phases: find inconsistencies between two agents.")
    Term.(
      const run $ agent_a $ agent_b $ test $ cases $ max_paths $ strategy $ split
      $ budget_ms $ max_conflicts $ deadline_ms $ jobs $ no_incremental $ no_canon
      $ no_prune $ no_share_base $ no_clause_exchange $ certify $ validate
      $ validate_live_flag $ live_socket_a $ live_socket_b
      $ chaos_seed $ chaos_rate $ chaos_points $ replay_schedule_arg $ record_schedule_arg
      $ task_deadline_ms $ max_retries
      $ backoff_ms $ mem_ceiling_mb)

(* --- explore (systematic fault-schedule search) ------------------------ *)

let explore_cmd =
  let positive name =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | Some _ -> Error (`Msg (name ^ " must be positive"))
          | None -> Error (`Msg ("expected an integer, got " ^ s))),
        Format.pp_print_int )
  in
  let workload_name =
    Arg.(
      value
      & opt string "cs_flow_mods"
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            "Workload to explore: a test id (crosschecked between --agent-a \
             and --agent-b, with a checkpoint leg and a fault-free recovery \
             resume per run) or $(b,synthetic-pair), the explorer's pure-draw \
             self-test.  Default cs_flow_mods.")
  in
  let agent_a =
    Arg.(
      value
      & opt agent_conv Switches.Reference_switch.agent
      & info [ "agent-a"; "a" ] ~doc:"First agent (default ref).")
  in
  let agent_b =
    Arg.(
      value
      & opt agent_conv Switches.Modified_switch.agent
      & info [ "agent-b"; "b" ] ~doc:"Second agent (default modified).")
  in
  let max_schedules =
    Arg.(
      value
      & opt (positive "max-schedules") 256
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Candidate-schedule budget (default 256).")
  in
  let faults_per_schedule =
    Arg.(
      value
      & opt (positive "faults-per-schedule") 2
      & info [ "faults-per-schedule" ] ~docv:"N"
          ~doc:
            "Schedule density: 1 enumerates every single-fault schedule; 2 \
             adds a budgeted pass over all pairs; higher densities fill the \
             remaining budget with deterministic random N-site schedules \
             (default 2).")
  in
  let shrink =
    Arg.(
      value
      & flag
      & info [ "shrink" ]
          ~doc:
            "ddmin every violation to a locally minimal failing schedule: \
             removing any single remaining site makes the oracles pass.")
  in
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:
            "Write the first violation's schedule (the shrunk one under \
             --shrink) to $(docv), with an exact replay command on stdout.")
  in
  let schedule_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Replay one explicit schedule against the workload's oracles \
             instead of enumerating candidates: exit 0 if every oracle holds, \
             1 on violation.  This is how committed repro files are \
             re-validated.")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for the random-schedule strategy (default 0).")
  in
  let max_wall_s =
    Arg.(
      value
      & opt float 300.0
      & info [ "max-wall-s" ] ~docv:"S"
          ~doc:"Wall-clock bound per workload run checked by the time oracle (default 300).")
  in
  let save_repro ~workload_name file sched =
    let sched =
      Harness.Schedule.with_meta
        [ ("workload", workload_name); ("expect", "violation") ]
        sched
    in
    Harness.Schedule.save file sched;
    Format.printf "wrote repro %s (%d site(s))@." file (Harness.Schedule.cardinal sched);
    Format.printf "replay: soft explore --workload %s --schedule %s@." workload_name file
  in
  let run workload_name agent_a agent_b max_paths jobs max_schedules faults_per_schedule
      shrink repro schedule_file seed max_wall_s budget_ms max_conflicts =
    apply_budget budget_ms max_conflicts;
    match
      Soft.Oracle.workload ~max_paths ~jobs ~max_wall_s ~a:agent_a ~b:agent_b workload_name
    with
    | Error msg ->
      Format.eprintf "soft: %s@." msg;
      2
    | Ok w -> (
      match schedule_file with
      | Some file -> (
        match Harness.Schedule.load file with
        | Error e ->
          Format.eprintf "soft: cannot load schedule %s: %s@." file e;
          2
        | Ok sched -> (
          let baseline, sites = Harness.Explore.discover w in
          Format.printf "%s: %d draw site(s); replaying %s (%d scheduled)@."
            workload_name (List.length sites) file (Harness.Schedule.cardinal sched);
          match Harness.Explore.check_schedule w ~baseline sched with
          | [] ->
            Format.printf "schedule upholds every oracle@.";
            0
          | messages ->
            List.iter (Format.printf "violation: %s@.") messages;
            (match (shrink, repro) with
            | false, Some file' -> save_repro ~workload_name file' sched
            | true, _ -> (
              match Harness.Explore.shrink w ~baseline sched with
              | None -> ()
              | Some (minimal, tests) ->
                Format.printf "shrunk to %d site(s) in %d run(s)@."
                  (Harness.Schedule.cardinal minimal) tests;
                Option.iter
                  (fun file' -> save_repro ~workload_name file' minimal)
                  repro)
            | false, None -> ());
            1))
      | None ->
        let out =
          Harness.Explore.explore ~max_schedules ~faults_per_schedule ~seed ~shrink
            ~log:(fun m -> Format.printf "%s@." m)
            w
        in
        let s = out.Harness.Explore.o_stats in
        Format.printf
          "%s: %d site(s), %d schedule(s) run, %d violation(s), %d shrink run(s)@."
          workload_name s.Harness.Explore.x_sites s.x_schedules s.x_violations
          s.x_shrink_tests;
        (match out.Harness.Explore.o_violations with
        | [] -> 0
        | v :: _ ->
          Option.iter
            (fun file ->
              save_repro ~workload_name file
                (Option.value ~default:v.Harness.Explore.v_schedule
                   v.Harness.Explore.v_minimal))
            repro;
          1))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematic fault-schedule exploration: discover the workload's draw \
          sites, run it under candidate schedules (all singles, budgeted \
          pairs, random combinations), check the standing invariant oracles \
          per schedule, and ddmin any violation to a minimal repro file.")
    Term.(
      const run $ workload_name $ agent_a $ agent_b $ max_paths $ jobs $ max_schedules
      $ faults_per_schedule $ shrink $ repro $ schedule_file $ seed $ max_wall_s
      $ budget_ms $ max_conflicts)

(* --- service mode (serve / submit / status) --------------------------- *)

let service_dir =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir"; "d" ] ~docv:"DIR"
        ~doc:"Service directory holding the job queue, WAL, result store and reports.")

(* submit validates names/ids eagerly (usage errors exit 2 at the client)
   but ships the normalized strings — the daemon re-resolves them. *)
let agent_name_conv =
  Arg.conv
    ( (fun s ->
        let s = String.lowercase_ascii s in
        match lookup_agent s with Ok _ -> Ok s | Error e -> Error (`Msg e)),
      Format.pp_print_string )

let test_id_conv =
  Arg.conv
    ( (fun s ->
        match lookup_test s with
        | Ok t -> Ok t.Harness.Test_spec.id
        | Error e -> Error (`Msg e)),
      Format.pp_print_string )

let serve_cmd =
  let once =
    Arg.(
      value
      & flag
      & info [ "once" ]
          ~doc:"Drain everything currently queued or in flight, then exit instead of polling.")
  in
  let poll_ms =
    Arg.(
      value
      & opt int 200
      & info [ "poll-ms" ] ~docv:"MS" ~doc:"Queue polling interval when idle (default 200).")
  in
  let max_units =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-units" ] ~docv:"N"
          ~doc:"Stop after processing N units (testing aid: a controlled mid-run kill).")
  in
  let soft_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "soft-mb" ] ~docv:"MB"
          ~doc:
            "Soft heap watermark: crossing it sheds the solver memo cache and \
             degrades the crosscheck to one worker.")
  in
  let hard_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "hard-mb" ] ~docv:"MB"
          ~doc:
            "Hard heap watermark: additionally stop admitting queued jobs, so \
             submitters see backpressure instead of the daemon dying.")
  in
  let crash_limit =
    Arg.(
      value
      & opt int 3
      & info [ "crash-limit" ] ~docv:"N"
          ~doc:
            "Starts without a verdict before recovery quarantines a unit as a \
             crash-looper (default 3).")
  in
  let no_fsync =
    Arg.(
      value
      & flag
      & info [ "no-fsync" ]
          ~doc:"Skip fsync on WAL/store commits — tests and benchmarks only.")
  in
  let run dir once poll_ms max_units max_paths jobs budget_ms max_conflicts certify
      chaos_seed chaos_rate chaos_points task_deadline_ms max_retries backoff_ms
      mem_ceiling_mb soft_mb hard_mb crash_limit no_fsync =
    apply_budget budget_ms max_conflicts;
    apply_certify certify;
    apply_chaos ?points:chaos_points chaos_seed chaos_rate;
    let supervise = make_supervise task_deadline_ms max_retries backoff_ms mem_ceiling_mb in
    match
      let cfg =
        Soft.Service.config ~max_paths ~jobs ?supervise ~crash_limit ?soft_mb ?hard_mb
          ~fsync:(not no_fsync) ~agents ()
      in
      let t = Soft.Service.open_service cfg dir in
      Fun.protect
        ~finally:(fun () -> Soft.Service.close t)
        (fun () -> Soft.Service.serve ~once ~poll_ms ?max_units t)
    with
    | () ->
      chaos_report ();
      0
    | exception Harness.Chaos.Injected_fault p ->
      (* the simulated crash: exit like a kill; the next serve recovers *)
      Format.eprintf "soft: injected fault (%s) crashed the service@." p;
      3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Crash-only service daemon: recover from the WAL (the only startup \
          path), then drain the persistent job queue.")
    Term.(
      const run $ service_dir $ once $ poll_ms $ max_units $ max_paths $ jobs $ budget_ms
      $ max_conflicts $ certify $ chaos_seed $ chaos_rate $ chaos_points $ task_deadline_ms
      $ max_retries $ backoff_ms $ mem_ceiling_mb $ soft_mb $ hard_mb $ crash_limit
      $ no_fsync)

let submit_cmd =
  let agent_a =
    Arg.(
      required
      & opt (some agent_name_conv) None
      & info [ "agent-a"; "a" ] ~doc:"First agent.")
  in
  let agent_b =
    Arg.(
      required
      & opt (some agent_name_conv) None
      & info [ "agent-b"; "b" ] ~doc:"Second agent.")
  in
  let tests =
    Arg.(
      non_empty
      & opt_all test_id_conv []
      & info [ "test"; "t" ] ~docv:"TEST" ~doc:"Test id; repeatable.")
  in
  let fresh =
    Arg.(
      value
      & flag
      & info [ "fresh" ]
          ~doc:
            "Force phase-1 re-execution (use after editing an agent model).  \
             Crosscheck verdicts are still answered from the store for \
             partitions whose fingerprint did not change.")
  in
  let max_pending =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Queue depth at which submission is refused (default 64).")
  in
  let run dir agent_a agent_b tests fresh max_pending =
    match Soft.Service.submit ~fresh ?max_pending dir ~agent_a ~agent_b ~tests with
    | Ok id ->
      Format.printf "submitted %s@." id;
      0
    | Error (`Backpressure depth) ->
      Format.eprintf "soft: queue full (%d pending); try again later@." depth;
      4
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Enqueue a crosscheck job for the service daemon.")
    Term.(const run $ service_dir $ agent_a $ agent_b $ tests $ fresh $ max_pending)

let status_cmd =
  let run dir =
    Format.printf "%a@." Soft.Service.pp_status (Soft.Service.status dir);
    0
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Read-only service snapshot (works with or without a daemon running).")
    Term.(const run $ service_dir)

(* --- switch-serve (the loopback live switch) -------------------------- *)

let switch_serve_cmd =
  let agent =
    Arg.(
      required & opt (some agent_conv) None & info [ "agent" ] ~doc:"Agent model to serve.")
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"ADDR"
          ~doc:"Address to listen on: unix:PATH, a bare socket path, or HOST:PORT.")
  in
  let crash_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "SIGKILL this server after N served barriers — the CI lever for \
             killing the switch mid-replay.")
  in
  let max_conns =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Serve N connections, then exit cleanly (default: serve forever).")
  in
  let idle_ms =
    Arg.(
      value
      & opt int 30_000
      & info [ "idle-ms" ] ~docv:"MS"
          ~doc:"Per-connection receive deadline; a silent peer is dropped (default 30000).")
  in
  let run agent socket crash_after max_conns idle_ms max_paths chaos_seed chaos_rate
      chaos_points =
    apply_chaos ?points:chaos_points chaos_seed chaos_rate;
    match Openflow.Conn.addr_of_string socket with
    | addr ->
      Soft.Live.serve ~max_paths ?crash_after_barriers:crash_after ?max_conns
        ~idle_deadline_ms:idle_ms
        ~on_listening:(fun () ->
          Format.printf "switch-serve: %s listening on %s@."
            (Switches.Agent_intf.name agent) socket)
        agent addr;
      0
    | exception Invalid_argument msg ->
      Format.eprintf "soft: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "switch-serve"
       ~doc:
         "Serve an agent model as a live switch process speaking OpenFlow 1.0 \
          over a socket — the loopback peer for compare --validate-live.")
    Term.(
      const run $ agent $ socket $ crash_after $ max_conns $ idle_ms $ max_paths
      $ chaos_seed $ chaos_rate $ chaos_points)

(* --- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "agents:@.";
    Format.printf "  ref       - OpenFlow 1.0 Reference Switch model@.";
    Format.printf "  ovs       - Open vSwitch 1.0.0 model@.";
    Format.printf "  modified  - Reference Switch with 7 injected differences@.";
    Format.printf "@.tests (Table 1):@.";
    List.iter
      (fun (t : Harness.Test_spec.t) -> Format.printf "  %-14s %s@." t.id t.description)
      (Harness.Test_spec.all ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available agents and tests.") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "soft" ~version:"1.0.0"
       ~doc:"Systematic OpenFlow Testing: crosscheck OpenFlow agent implementations.")
    [
      run_cmd;
      group_cmd;
      check_cmd;
      compare_cmd;
      explore_cmd;
      serve_cmd;
      submit_cmd;
      status_cmd;
      switch_serve_cmd;
      list_cmd;
    ]

(* Commands return their own exit status; cmdliner's parse/term errors map
   to the documented usage status 2, an escaped exception to 125. *)
let () =
  match Cmd.eval_value main with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
